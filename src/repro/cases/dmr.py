"""The double Mach reflection (DMR) of Woodward & Colella (1984).

The paper's test case (Sec. V-B): an unsteady planar Mach-10 shock
incident on a 30-degree inviscid compression ramp.  In the standard
computational formulation the ramp wall is the x-axis and the incident
shock is inclined at 60 degrees, passing through (1/6, 0) at t = 0:

- pre-shock (quiescent):   rho = 1.4, u = v = 0, p = 1  (so a = 1)
- post-shock (Mach 10 jump): rho = 8, |u| = 8.25 along the shock normal,
  p = 116.5

Boundary conditions: supersonic post-shock inflow at x = 0; reflecting
wall on y = 0 for x >= 1/6 (post-shock values before the ramp start);
time-exact shock states on the top boundary; zero-gradient outflow at
x = 4.  The problem is solved in 2D or 3D (spanwise-periodic, statistically
homogeneous along z — the paper's setup).

Following the paper, general curvilinear coordinates can be enabled even
though the problem does not require them ("Although unnecessary for this
problem, we use general curvilinear coordinates"): a smooth sinusoidal
stretching exercises the stored-coordinate metrics, the curvilinear
interpolator, and its global ParallelCopy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cases.base import Case
from repro.cases.grids import stretched_mapping
from repro.cases.riemann import PrimitiveState, normal_shock_jump

#: shock angle from the x-axis (the 30-degree ramp in the shock frame)
SHOCK_ANGLE_DEG = 60.0
#: incident shock Mach number
SHOCK_MACH = 10.0
#: x-intercept of the shock on the wall at t = 0
X0 = 1.0 / 6.0


class DoubleMachReflection(Case):
    """DMR on [0, 4] x [0, 1] (x [0, Lz]), 2D or 3D."""

    name = "dmr"
    tag_threshold = 0.3
    cfl = 0.5

    def __init__(
        self,
        ncells: Tuple[int, ...] = (128, 32),
        curvilinear: bool = False,
        stretch: float = 0.12,
    ) -> None:
        dim = len(ncells)
        if dim not in (2, 3):
            raise ValueError("DMR runs in 2D or 3D")
        self.domain_cells = tuple(ncells)
        self.prob_extent = (4.0, 1.0) if dim == 2 else (4.0, 1.0, 0.25)
        self.periodic = (False, False) if dim == 2 else (False, False, True)
        self.curvilinear = curvilinear
        self._mapping = (
            stretched_mapping(self.prob_extent, amplitude=stretch)
            if curvilinear
            else None
        )
        super().__init__()

        g = self.eos.gamma
        self.pre = PrimitiveState(rho=g, u=0.0, p=1.0)  # a = 1
        post = normal_shock_jump(SHOCK_MACH, self.pre, g)
        ang = np.radians(SHOCK_ANGLE_DEG)
        self.post = post
        #: lab-frame post-shock velocity components
        self.post_vel = (post.u * np.sin(ang), -post.u * np.cos(ang))
        #: horizontal speed of the shock trace along a y = const line
        self.shock_trace_speed = SHOCK_MACH / np.sin(ang)
        self._tan = np.tan(ang)

    # -- geometry -----------------------------------------------------------
    def mapping(self, s: np.ndarray) -> np.ndarray:
        if self._mapping is not None:
            return self._mapping(s)
        return super().mapping(s)

    def shock_x(self, y: np.ndarray, time: float) -> np.ndarray:
        """x-position of the incident shock at height y and time t."""
        return X0 + y / self._tan + self.shock_trace_speed * time

    # -- states --------------------------------------------------------------
    def _state_arrays(self, post_mask: np.ndarray):
        """(rho, vel, p) arrays selecting pre/post shock by mask."""
        shape = post_mask.shape
        rho = np.where(post_mask, self.post.rho, self.pre.rho)
        p = np.where(post_mask, self.post.p, self.pre.p)
        vel = np.zeros((self.dim,) + shape)
        vel[0] = np.where(post_mask, self.post_vel[0], 0.0)
        vel[1] = np.where(post_mask, self.post_vel[1], 0.0)
        return rho, vel, p

    def initial_condition(self, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        post = coords[0] < self.shock_x(coords[1], time)
        rho, vel, p = self._state_arrays(post)
        return self.eos.conservative(self.layout, rho, vel, p)

    # -- boundary conditions ---------------------------------------------
    def bc_fill(self, fab, geom, time, coords=None) -> None:
        lay = self.layout
        data = fab.data

        # x-lo: supersonic post-shock inflow
        sl = self.outside_domain_slices(fab, geom, 0, "lo")
        if sl is not None:
            self._set_post(data, sl)
        # x-hi: zero-gradient outflow
        sl = self.outside_domain_slices(fab, geom, 0, "hi")
        if sl is not None:
            gap = data.shape[1] - sl[1].start
            data[:, -gap:] = data[:, -gap - 1: -gap]
        # y-lo: post-shock for x < X0, reflecting wall beyond
        sl = self.outside_domain_slices(fab, geom, 1, "lo")
        if sl is not None:
            self._wall_bc(fab, geom, sl, coords)
        # y-hi: exact moving-shock states
        sl = self.outside_domain_slices(fab, geom, 1, "hi")
        if sl is not None:
            self._top_bc(fab, geom, sl, time, coords)

    def _set_post(self, data: np.ndarray, sl) -> None:
        lay = self.layout
        region_shape = data[sl][0].shape
        post = np.ones(region_shape, dtype=bool)
        rho, vel, p = self._state_arrays(post)
        data[sl] = self.eos.conservative(lay, rho, vel, p)

    def _wall_bc(self, fab, geom, sl, coords) -> None:
        """Reflecting slip wall for x >= X0, post-shock values before it."""
        lay = self.layout
        data = fab.data
        gap = sl[2].stop  # ghost layers below the wall
        x = self._x_of(fab, coords)
        for g in range(gap):
            ghost = [slice(None)] * data.ndim
            ghost[2] = slice(g, g + 1)
            mirror = [slice(None)] * data.ndim
            mirror[2] = slice(2 * gap - 1 - g, 2 * gap - g)
            refl = data[tuple(mirror)].copy()
            refl[lay.mom(1)] *= -1.0  # flip wall-normal momentum
            xg = x[tuple(ghost[1:])] if x is not None else None
            if xg is None:
                data[tuple(ghost)] = refl
            else:
                post = xg < X0
                rho, vel, p = self._state_arrays(post)
                fixed = self.eos.conservative(lay, rho, vel, p)
                data[tuple(ghost)] = np.where(post[None], fixed, refl)

    def _top_bc(self, fab, geom, sl, time, coords) -> None:
        lay = self.layout
        data = fab.data
        x = self._x_of(fab, coords)
        region = data[sl]
        if x is None:
            return
        xg = x[tuple(sl[1:])]
        y_top = self.prob_extent[1]
        post = xg < self.shock_x(np.full_like(xg, y_top), time)
        rho, vel, p = self._state_arrays(post)
        data[sl] = self.eos.conservative(lay, rho, vel, p)

    def _x_of(self, fab, coords) -> Optional[np.ndarray]:
        """Physical x over the fab's grown region (from the coords fab)."""
        if coords is not None:
            return coords.whole()[0]
        return None
