"""Exact oblique-shock relations (theta-beta-Mach).

For supersonic flow at Mach M deflected by a ramp of angle theta, an
attached oblique shock forms at wave angle beta satisfying

    tan(theta) = 2 cot(beta) (M^2 sin^2(beta) - 1)
                 / (M^2 (gamma + cos 2 beta) + 2).

Used to validate the curvilinear compression-ramp case against theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq


def theta_from_beta(beta: float, mach: float, gamma: float = 1.4) -> float:
    """Flow deflection angle for a given wave angle (radians)."""
    m2s2 = mach**2 * math.sin(beta) ** 2
    num = 2.0 / math.tan(beta) * (m2s2 - 1.0)
    den = mach**2 * (gamma + math.cos(2 * beta)) + 2.0
    return math.atan2(num, den)


def beta_from_theta(theta: float, mach: float, gamma: float = 1.4,
                    weak: bool = True) -> float:
    """Wave angle (radians) for a given deflection (weak solution by default).

    Raises ValueError for detached shocks (theta beyond theta_max).
    """
    if mach <= 1.0:
        raise ValueError("oblique shocks require supersonic flow")
    beta_min = math.asin(1.0 / mach) + 1e-12
    beta_max = math.pi / 2 - 1e-12
    # locate theta_max to split weak/strong branches
    betas = np.linspace(beta_min, beta_max, 2000)
    thetas = np.array([theta_from_beta(b, mach, gamma) for b in betas])
    k_max = int(np.argmax(thetas))
    if theta > thetas[k_max]:
        raise ValueError(
            f"deflection {math.degrees(theta):.1f} deg exceeds the attached-"
            f"shock limit {math.degrees(thetas[k_max]):.1f} deg at M={mach}"
        )
    if theta <= 0:
        raise ValueError("deflection must be positive")
    if weak:
        lo, hi = beta_min, betas[k_max]
    else:
        lo, hi = betas[k_max], beta_max
    return float(brentq(lambda b: theta_from_beta(b, mach, gamma) - theta,
                        lo, hi, xtol=1e-12))


@dataclass(frozen=True)
class ObliqueShock:
    """Exact jump across an attached oblique shock."""

    mach1: float
    theta: float  # deflection (radians)
    gamma: float = 1.4

    @property
    def beta(self) -> float:
        """Wave angle (radians, weak branch)."""
        return beta_from_theta(self.theta, self.mach1, self.gamma)

    @property
    def mn1(self) -> float:
        """Upstream normal Mach number."""
        return self.mach1 * math.sin(self.beta)

    @property
    def pressure_ratio(self) -> float:
        """p2 / p1 across the shock."""
        g = self.gamma
        return (2 * g * self.mn1**2 - (g - 1)) / (g + 1)

    @property
    def density_ratio(self) -> float:
        """rho2 / rho1 across the shock."""
        g = self.gamma
        return (g + 1) * self.mn1**2 / ((g - 1) * self.mn1**2 + 2)

    @property
    def temperature_ratio(self) -> float:
        """T2 / T1 across the shock."""
        return self.pressure_ratio / self.density_ratio

    @property
    def mach2(self) -> float:
        """Downstream Mach number (weak-shock branch)."""
        g = self.gamma
        mn2 = math.sqrt((self.mn1**2 + 2 / (g - 1))
                        / (2 * g / (g - 1) * self.mn1**2 - 1))
        return mn2 / math.sin(self.beta - self.theta)
