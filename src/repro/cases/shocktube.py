"""Sod shock tube: the standard 1D validation problem.

Left state (1, 0, 1), right state (0.125, 0, 0.1), gamma = 1.4.  The exact
solution comes from the Riemann solver in :mod:`repro.cases.riemann`;
CRoCCo's WENO solution is compared against it in the integration tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cases.base import Case
from repro.cases.riemann import PrimitiveState, sample


class SodShockTube(Case):
    """1D Sod problem on x in [0, 1], diaphragm at 0.5."""

    name = "sod"
    domain_cells: Tuple[int, ...] = (128,)
    prob_extent: Tuple[float, ...] = (1.0,)
    periodic: Tuple[bool, ...] = (False,)
    tag_threshold = 0.02
    cfl = 0.5

    left = PrimitiveState(rho=1.0, u=0.0, p=1.0)
    right = PrimitiveState(rho=0.125, u=0.0, p=0.1)
    x_diaphragm = 0.5

    def __init__(self, ncells: int = 128) -> None:
        self.domain_cells = (ncells,)
        super().__init__()

    def initial_condition(self, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        x = coords[0]
        rho = np.where(x < self.x_diaphragm, self.left.rho, self.right.rho)
        u = np.where(x < self.x_diaphragm, self.left.u, self.right.u)
        p = np.where(x < self.x_diaphragm, self.left.p, self.right.p)
        return self.eos.conservative(self.layout, rho, u[None], p)

    def bc_fill(self, fab, geom, time, coords=None) -> None:
        """Transmissive (zero-gradient) boundaries at both ends."""
        for side in ("lo", "hi"):
            sl = self.outside_domain_slices(fab, geom, 0, side)
            if sl is None:
                continue
            data = fab.data
            if side == "lo":
                gap = sl[1].stop
                data[:, :gap] = data[:, gap: gap + 1]
            else:
                gap = data.shape[1] - sl[1].start
                data[:, -gap:] = data[:, -gap - 1: -gap]

    def exact_solution(self, coords: np.ndarray, time: float) -> Optional[np.ndarray]:
        x = coords[0]
        if time <= 0:
            return self.initial_condition(coords)
        xi = (x - self.x_diaphragm) / time
        rho, u, p = sample(self.left, self.right, xi, self.eos.gamma)
        return self.eos.conservative(self.layout, rho, u[None], p)
