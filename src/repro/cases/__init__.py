"""Flow cases: problem definitions the CRoCCo driver runs.

- :mod:`repro.cases.base` — the Case interface (domain, mapping, initial
  condition, boundary conditions, tagging).
- :mod:`repro.cases.dmr` — the double Mach reflection of Woodward &
  Colella, the paper's test problem (Sec. V-B), in both the classic
  Cartesian formulation and a curvilinear ramp-fitted formulation.
- :mod:`repro.cases.shocktube` — the Sod shock tube (validation against
  the exact Riemann solution).
- :mod:`repro.cases.vortex` — isentropic vortex advection (smooth
  convergence testing).
- :mod:`repro.cases.ramp` — supersonic compression ramp on a body-fitted
  curvilinear grid, validated against exact oblique-shock theory
  (:mod:`repro.cases.oblique`) — the geometry class the paper's
  curvilinear capability exists for.
- :mod:`repro.cases.reacting` — two-species Arrhenius ignition (the w_s
  source of Eq. 1).
- :mod:`repro.cases.grids` — curvilinear mapping builders (uniform,
  stretched, ramp).
"""

from repro.cases.base import Case
from repro.cases.dmr import DoubleMachReflection
from repro.cases.ramp import CompressionRamp
from repro.cases.reacting import IgnitionFront
from repro.cases.shocktube import SodShockTube
from repro.cases.vortex import IsentropicVortex

__all__ = [
    "Case",
    "DoubleMachReflection",
    "CompressionRamp",
    "IgnitionFront",
    "SodShockTube",
    "IsentropicVortex",
]
