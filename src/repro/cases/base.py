"""The Case interface: everything problem-specific the driver needs."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.geometry import Geometry
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux


class Case:
    """Base class for flow problems.

    Subclasses define the computational domain, the (possibly curvilinear)
    grid mapping, the initial condition, physical boundary conditions, and
    the refinement tagging threshold.
    """

    #: problem name for reports
    name: str = "case"
    #: coarse-level cells per direction
    domain_cells: Tuple[int, ...] = (64, 64)
    #: physical domain lengths (the default mapping scales the unit box)
    prob_extent: Tuple[float, ...] = (1.0, 1.0)
    #: periodicity per direction
    periodic: Tuple[bool, ...] = (False, False)
    #: whether the grid mapping is non-Cartesian
    curvilinear: bool = False
    #: refinement tagging threshold on the density gradient
    tag_threshold: float = 0.1
    #: CFL number (the paper: RK3 stable for CFL <= 1)
    cfl: float = 0.5

    def __init__(self) -> None:
        self.layout = StateLayout(nspecies=1, dim=len(self.domain_cells))
        self.eos = self.make_eos()
        self.viscous = self.make_viscous()

    # -- physics hooks ----------------------------------------------------
    def make_eos(self):
        from repro.numerics.eos import IdealGasEOS

        return IdealGasEOS(gamma=1.4)

    def make_viscous(self) -> Optional[ViscousFlux]:
        """Return a ViscousFlux or None for inviscid problems."""
        return None

    @property
    def dim(self) -> int:
        return len(self.domain_cells)

    # -- geometry -----------------------------------------------------------
    def geometry0(self) -> Geometry:
        """Level-0 computational-domain geometry (unit computational box)."""
        n = self.domain_cells
        return Geometry(
            Box.from_extent([0] * self.dim, list(n)),
            [0.0] * self.dim,
            [1.0] * self.dim,
            self.periodic,
        )

    def mapping(self, s: np.ndarray) -> np.ndarray:
        """Physical coordinates from unit computational coordinates.

        ``s`` has shape (dim, ...) with components nominally in [0, 1]
        (ghost cells fall slightly outside; the mapping must extend
        smoothly).  The default scales the unit box to ``prob_extent``
        (uniform Cartesian).
        """
        ext = np.asarray(self.prob_extent, dtype=np.float64)
        return s * ext.reshape((-1,) + (1,) * (s.ndim - 1))

    def cartesian_dx(self, geom: Geometry) -> Tuple[float, ...]:
        """Physical cell sizes at a level (Cartesian cases only)."""
        n = geom.domain.size()
        return tuple(self.prob_extent[d] / n[d] for d in range(self.dim))

    def coordinates(self, geom: Geometry, region: Box) -> np.ndarray:
        """Cell-center physical coordinates over ``region`` at this level."""
        n = geom.domain.size()
        grids = np.meshgrid(
            *[
                (np.arange(region.lo[d], region.hi[d] + 1) + 0.5) / n[d]
                for d in range(self.dim)
            ],
            indexing="ij",
        )
        return self.mapping(np.stack(grids))

    # -- state hooks -------------------------------------------------------
    def initial_condition(self, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        """Conservative state from physical coordinates, shape (ncons, ...)."""
        raise NotImplementedError

    def bc_fill(self, fab: FArrayBox, geom: Geometry, time: float,
                coords: Optional[FArrayBox] = None) -> None:
        """Apply physical boundary conditions in outside-domain ghost cells.

        The default does nothing (fully periodic problems).
        """

    def exact_solution(self, coords: np.ndarray, time: float) -> Optional[np.ndarray]:
        """Exact solution for validation, if available."""
        return None

    def source(self, u: np.ndarray, coords: np.ndarray, time: float,
               metrics=None) -> Optional[np.ndarray]:
        """Conservative source terms (chemistry w_s of Eq. 1, SGS budgets).

        Called on each patch's valid region every RK stage with that
        patch's (interior-cropped) metrics; return None (the default) for
        source-free problems.
        """
        return None

    # -- helpers for implementing bc_fill ------------------------------------
    @staticmethod
    def outside_domain_slices(fab: FArrayBox, geom: Geometry, idim: int,
                              side: str):
        """Array slices selecting ghost layers beyond the domain on one face.

        Returns None when the fab does not touch that face.  The returned
        tuple indexes ``fab.data`` (component axis first).
        """
        gb = fab.grown_box()
        if side == "lo":
            gap = geom.domain.lo[idim] - gb.lo[idim]
            if gap <= 0:
                return None
            sl = slice(0, gap)
        elif side == "hi":
            gap = gb.hi[idim] - geom.domain.hi[idim]
            if gap <= 0:
                return None
            n = gb.shape()[idim]
            sl = slice(n - gap, n)
        else:
            raise ValueError("side must be 'lo' or 'hi'")
        out = [slice(None)] * (fab.dim + 1)
        out[idim + 1] = sl
        return tuple(out)
