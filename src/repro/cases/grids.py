"""Curvilinear grid mappings.

Curvilinear grids are generated from combinations of hyperbolic and
trigonometric functions (the reason CRoCCo stores coordinates rather than
recomputing them, Sec. III-C).  This module provides the mapping builders
used by the cases and examples:

- :func:`stretched_mapping` — smooth sinusoidal stretching that keeps the
  domain boundaries fixed (exercises the full curvilinear machinery on a
  logically rectangular physical domain, as the paper does for the DMR);
- :func:`tanh_cluster_mapping` — hyperbolic-tangent wall clustering, the
  classic boundary-layer grid;
- :func:`compression_ramp_mapping` — a smoothed compression-corner
  geometry, the canonical curvilinear hypersonic configuration.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

MappingFn = Callable[[np.ndarray], np.ndarray]


def stretched_mapping(extent: Sequence[float], amplitude: float = 0.15,
                      periods: int = 1) -> MappingFn:
    """Sinusoidally stretched coordinates with fixed endpoints.

    x_d = L_d * (s_d + amplitude * sin(2 pi periods s_d) / (2 pi periods));
    monotone for |amplitude| < 1.
    """
    if not 0 <= abs(amplitude) < 1:
        raise ValueError("amplitude magnitude must be < 1 for monotonicity")
    ext = np.asarray(extent, dtype=np.float64)
    w = 2 * np.pi * periods

    def mapping(s: np.ndarray) -> np.ndarray:
        shape = (-1,) + (1,) * (s.ndim - 1)
        return ext.reshape(shape) * (s + amplitude * np.sin(w * s) / w)

    return mapping


def tanh_cluster_mapping(extent: Sequence[float], beta: float = 2.0,
                         axis: int = 1) -> MappingFn:
    """Cluster grid lines toward the low side of one axis (wall grids).

    x = L * tanh(beta s) / tanh(beta) along ``axis``; other axes uniform.
    Larger beta clusters harder toward s = 0... (inverted so the fine
    spacing is at the wall end s = 0).
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    ext = np.asarray(extent, dtype=np.float64)

    def mapping(s: np.ndarray) -> np.ndarray:
        out = s.copy()
        # cluster toward s=0: x/L = 1 - tanh(beta (1-s))/tanh(beta)
        out[axis] = 1.0 - np.tanh(beta * (1.0 - s[axis])) / np.tanh(beta)
        shape = (-1,) + (1,) * (s.ndim - 1)
        return out * ext.reshape(shape)

    return mapping


def compression_ramp_mapping(extent: Sequence[float], angle_deg: float = 30.0,
                             corner: float = 0.5, smoothing: float = 0.05) -> MappingFn:
    """A smoothed 2D compression-corner (ramp) grid.

    The bottom boundary follows y_w(x) = 0 for x < corner and
    (x - corner) tan(angle) beyond, blended smoothly over ``smoothing``;
    grid lines shear linearly from the wall to the flat top boundary.
    Only the first two axes are deformed; any third axis stays uniform.
    """
    ext = np.asarray(extent, dtype=np.float64)
    tan_a = np.tan(np.radians(angle_deg))

    def wall(x: np.ndarray) -> np.ndarray:
        if smoothing <= 0:
            return np.where(x > corner * ext[0], (x - corner * ext[0]) * tan_a, 0.0)
        # softplus-style smooth corner
        t = (x - corner * ext[0]) / (smoothing * ext[0])
        return smoothing * ext[0] * tan_a * np.logaddexp(0.0, t)

    def mapping(s: np.ndarray) -> np.ndarray:
        out = np.empty_like(s)
        x = s[0] * ext[0]
        yw = wall(x)
        out[0] = x
        out[1] = yw + s[1] * (ext[1] - yw)  # shear between wall and flat top
        for d in range(2, s.shape[0]):
            out[d] = s[d] * ext[d]
        return out

    return mapping
