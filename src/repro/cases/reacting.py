"""Reacting flow: a 1D ignition/deflagration problem.

Exercises the multi-species machinery of Eq. 1 end to end: two-species
MixtureEOS with formation enthalpies, Fickian species diffusion with
enthalpy transport, and the Arrhenius source w_s.  A hot spot in a
premixed reactant ignites; the reaction front releases heat, converting
species A to B and driving pressure waves outward.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cases.base import Case
from repro.numerics.chemistry import ArrheniusReaction
from repro.numerics.eos import MixtureEOS, Species
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux, constant_viscosity


class IgnitionFront(Case):
    """Hot-spot ignition of a premixed A -> B reaction on x in [0, 1]."""

    name = "ignition"
    domain_cells: Tuple[int, ...] = (128,)
    prob_extent: Tuple[float, ...] = (1.0,)
    periodic: Tuple[bool, ...] = (False,)
    tag_threshold = 0.05
    cfl = 0.4

    def __init__(self, ncells: int = 128, T0: float = 300.0,
                 T_spot: float = 2000.0, spot_width: float = 0.05,
                 heat_release: float = 1.5e6, activation_temp: float = 4000.0,
                 pre_exp: float = 2.0e5, mu: float = 5e-5) -> None:
        self.domain_cells = (ncells,)
        self.T0 = T0
        self.T_spot = T_spot
        self.spot_width = spot_width
        self._species = (
            Species("A", molar_mass=0.029, cv=718.0, h_formation=heat_release),
            Species("B", molar_mass=0.029, cv=718.0, h_formation=0.0),
        )
        self.reaction = ArrheniusReaction(
            reactant=0, product=1, pre_exponential=pre_exp,
            activation_temperature=activation_temp,
        )
        self._mu = mu
        super().__init__()
        self.layout = StateLayout(nspecies=2, dim=1)

    def make_eos(self):
        return MixtureEOS(self._species)

    def make_viscous(self) -> Optional[ViscousFlux]:
        return ViscousFlux(constant_viscosity(self._mu), prandtl=0.72,
                           schmidt=0.9, include_species_diffusion=True)

    # -- state ------------------------------------------------------------
    def initial_condition(self, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        x = coords[0]
        # Gaussian hot spot at the domain center
        T = self.T0 + (self.T_spot - self.T0) * np.exp(
            -0.5 * ((x - 0.5) / self.spot_width) ** 2
        )
        rho = np.full_like(x, 1.0)
        # pure reactant everywhere; the spot ignites it
        rho_s = np.stack([rho, np.zeros_like(rho)])
        vel = np.zeros((1,) + x.shape)
        return self.eos.conservative(self.layout, rho_s, vel, T)

    def bc_fill(self, fab, geom, time, coords=None) -> None:
        """Transmissive boundaries (waves leave the domain)."""
        data = fab.data
        for side in ("lo", "hi"):
            sl = self.outside_domain_slices(fab, geom, 0, side)
            if sl is None:
                continue
            if side == "lo":
                gap = sl[1].stop
                data[:, :gap] = data[:, gap: gap + 1]
            else:
                gap = data.shape[1] - sl[1].start
                data[:, -gap:] = data[:, -gap - 1: -gap]

    def source(self, u: np.ndarray, coords: np.ndarray, time: float,
               metrics=None) -> Optional[np.ndarray]:
        return self.reaction.source(self.layout, self.eos, u)

    # -- diagnostics --------------------------------------------------------
    def burned_fraction(self, u: np.ndarray) -> float:
        """Mass fraction of product B over the sampled region."""
        return float(u[1].sum() / u[self.layout.rho_s].sum())
