"""Exact Riemann solver for the 1D Euler equations (ideal gas).

Used to validate the WENO solver against the Sod shock tube and to
construct exact pre/post-shock states for the double Mach reflection
(a Mach-10 moving normal shock is a Rankine-Hugoniot jump).

Follows Toro, *Riemann Solvers and Numerical Methods for Fluid Dynamics*,
ch. 4: Newton iteration on the pressure function to find the star-region
pressure, then similarity sampling at x/t.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class PrimitiveState:
    """1D primitive state (density, normal velocity, pressure)."""

    rho: float
    u: float
    p: float

    def sound_speed(self, gamma: float) -> float:
        """a = sqrt(gamma p / rho)."""
        return float(np.sqrt(gamma * self.p / self.rho))


def _pressure_function(p: float, s: PrimitiveState, gamma: float) -> Tuple[float, float]:
    """f_K(p) and its derivative (Toro eqs. 4.6-4.37)."""
    a = s.sound_speed(gamma)
    if p > s.p:  # shock
        A = 2.0 / ((gamma + 1.0) * s.rho)
        B = (gamma - 1.0) / (gamma + 1.0) * s.p
        f = (p - s.p) * np.sqrt(A / (p + B))
        df = np.sqrt(A / (p + B)) * (1.0 - 0.5 * (p - s.p) / (p + B))
    else:  # rarefaction
        f = (2.0 * a / (gamma - 1.0)) * ((p / s.p) ** ((gamma - 1.0) / (2 * gamma)) - 1.0)
        df = (1.0 / (s.rho * a)) * (p / s.p) ** (-(gamma + 1.0) / (2 * gamma))
    return float(f), float(df)


def star_state(left: PrimitiveState, right: PrimitiveState,
               gamma: float = 1.4, tol: float = 1e-12,
               max_iter: int = 100) -> Tuple[float, float]:
    """(p*, u*) of the star region between the nonlinear waves."""
    du = right.u - left.u
    # vacuum check
    al, ar = left.sound_speed(gamma), right.sound_speed(gamma)
    if 2.0 * (al + ar) / (gamma - 1.0) <= du:
        raise ValueError("initial states generate vacuum")
    # initial guess: two-rarefaction approximation
    z = (gamma - 1.0) / (2.0 * gamma)
    p = ((al + ar - 0.5 * (gamma - 1.0) * du) /
         (al / left.p**z + ar / right.p**z)) ** (1.0 / z)
    p = max(p, tol)
    for _ in range(max_iter):
        fl, dfl = _pressure_function(p, left, gamma)
        fr, dfr = _pressure_function(p, right, gamma)
        change = (fl + fr + du) / (dfl + dfr)
        p_new = max(p - change, tol)
        if abs(p_new - p) < tol * max(p, 1.0):
            p = p_new
            break
        p = p_new
    fl, _ = _pressure_function(p, left, gamma)
    fr, _ = _pressure_function(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (fr - fl)
    return float(p), float(u)


def sample(left: PrimitiveState, right: PrimitiveState, xi: np.ndarray,
           gamma: float = 1.4) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solution (rho, u, p) at similarity coordinates xi = x/t."""
    xi = np.asarray(xi, dtype=np.float64)
    ps, us = star_state(left, right, gamma)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    gm1, gp1 = gamma - 1.0, gamma + 1.0

    def fill(mask, r, uu, pp):
        rho[mask] = r
        u[mask] = uu
        p[mask] = pp

    left_side = xi <= us
    # -- left wave ---------------------------------------------------------
    al = left.sound_speed(gamma)
    if ps > left.p:  # left shock
        sl = left.u - al * np.sqrt(gp1 / (2 * gamma) * ps / left.p + gm1 / (2 * gamma))
        rsl = left.rho * ((ps / left.p + gm1 / gp1) / (gm1 / gp1 * ps / left.p + 1.0))
        m = left_side & (xi < sl)
        fill(m, left.rho, left.u, left.p)
        m = left_side & (xi >= sl)
        fill(m, rsl, us, ps)
    else:  # left rarefaction
        asl = al * (ps / left.p) ** (gm1 / (2 * gamma))
        head, tail = left.u - al, us - asl
        m = left_side & (xi < head)
        fill(m, left.rho, left.u, left.p)
        m = left_side & (xi >= head) & (xi <= tail)
        if m.any():
            uf = 2.0 / gp1 * (al + 0.5 * gm1 * left.u + xi[m])
            cf = 2.0 / gp1 * (al + 0.5 * gm1 * (left.u - xi[m]))
            rho[m] = left.rho * (cf / al) ** (2.0 / gm1)
            u[m] = uf
            p[m] = left.p * (cf / al) ** (2 * gamma / gm1)
        m = left_side & (xi > tail)
        rsl = left.rho * (ps / left.p) ** (1.0 / gamma)
        fill(m, rsl, us, ps)
    # -- right wave -------------------------------------------------------
    ar = right.sound_speed(gamma)
    right_side = ~left_side
    if ps > right.p:  # right shock
        sr = right.u + ar * np.sqrt(gp1 / (2 * gamma) * ps / right.p + gm1 / (2 * gamma))
        rsr = right.rho * ((ps / right.p + gm1 / gp1) / (gm1 / gp1 * ps / right.p + 1.0))
        m = right_side & (xi > sr)
        fill(m, right.rho, right.u, right.p)
        m = right_side & (xi <= sr)
        fill(m, rsr, us, ps)
    else:  # right rarefaction
        asr = ar * (ps / right.p) ** (gm1 / (2 * gamma))
        head, tail = right.u + ar, us + asr
        m = right_side & (xi > head)
        fill(m, right.rho, right.u, right.p)
        m = right_side & (xi >= tail) & (xi <= head)
        if m.any():
            uf = 2.0 / gp1 * (-ar + 0.5 * gm1 * right.u + xi[m])
            cf = 2.0 / gp1 * (ar - 0.5 * gm1 * (right.u - xi[m]))
            rho[m] = right.rho * (cf / ar) ** (2.0 / gm1)
            u[m] = uf
            p[m] = right.p * (cf / ar) ** (2 * gamma / gm1)
        m = right_side & (xi < tail)
        rsr = right.rho * (ps / right.p) ** (1.0 / gamma)
        fill(m, rsr, us, ps)
    return rho, u, p


def normal_shock_jump(mach: float, upstream: PrimitiveState,
                      gamma: float = 1.4) -> PrimitiveState:
    """Post-shock state behind a moving normal shock of Mach ``mach``.

    ``upstream`` is the quiescent pre-shock state in the lab frame; the
    shock moves into it at speed ``mach * a_upstream``.  Rankine-Hugoniot
    in the shock frame, transformed back to the lab frame.
    """
    if mach <= 1.0:
        raise ValueError("shock Mach number must exceed 1")
    a1 = upstream.sound_speed(gamma)
    ws = mach * a1 + upstream.u  # shock speed (lab frame)
    m2 = mach * mach
    rho2 = upstream.rho * (gamma + 1.0) * m2 / ((gamma - 1.0) * m2 + 2.0)
    p2 = upstream.p * (2.0 * gamma * m2 - (gamma - 1.0)) / (gamma + 1.0)
    # mass conservation in the shock frame gives the lab-frame velocity
    u2 = ws - upstream.rho * (ws - upstream.u) / rho2
    return PrimitiveState(rho=float(rho2), u=float(u2), p=float(p2))
