"""Supersonic compression ramp on a body-fitted curvilinear grid.

The configuration the paper's curvilinear capability exists for (Sec. I:
"solvers working on curvilinear grids... compression corners, re-entry
vehicles"): supersonic freestream over a ramp, producing an attached
oblique shock whose strength is known exactly from theta-beta-Mach
theory.  The grid follows the wall (compression_ramp_mapping), so the
slip-wall boundary condition must reflect momentum about the *local*
wall tangent computed from the stored coordinates — a genuinely
curvilinear boundary treatment.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.cases.base import Case
from repro.cases.grids import compression_ramp_mapping
from repro.cases.oblique import ObliqueShock


class CompressionRamp(Case):
    """Mach-M flow over a smoothed ramp, on a wall-fitted grid."""

    name = "ramp"
    curvilinear = True
    tag_threshold = 0.15
    cfl = 0.4

    def __init__(self, ncells: Tuple[int, int] = (96, 48), mach: float = 3.0,
                 angle_deg: float = 15.0, corner: float = 0.4,
                 smoothing: float = 0.04) -> None:
        self.domain_cells = tuple(ncells)
        self.prob_extent = (2.0, 1.0)
        self.periodic = (False, False)
        self.mach = mach
        self.angle_deg = angle_deg
        self.corner = corner
        self._mapping = compression_ramp_mapping(
            self.prob_extent, angle_deg=angle_deg, corner=corner,
            smoothing=smoothing,
        )
        super().__init__()
        # freestream: rho = gamma, p = 1 so that a = 1 and u = M
        g = self.eos.gamma
        self.rho_inf = g
        self.p_inf = 1.0
        self.u_inf = mach
        self.shock = ObliqueShock(mach1=mach, theta=math.radians(angle_deg),
                                  gamma=g)

    def mapping(self, s: np.ndarray) -> np.ndarray:
        return self._mapping(s)

    def freestream(self, shape) -> np.ndarray:
        """The uniform Mach-M inflow state on an array of this shape."""
        vel = np.zeros((2,) + tuple(shape))
        vel[0] = self.u_inf
        return self.eos.conservative(
            self.layout, np.full(shape, self.rho_inf), vel,
            np.full(shape, self.p_inf),
        )

    def initial_condition(self, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        return self.freestream(coords.shape[1:])

    # -- boundary conditions ---------------------------------------------
    def bc_fill(self, fab, geom, time, coords=None) -> None:
        data = fab.data
        # x-lo: supersonic inflow (fixed freestream)
        sl = self.outside_domain_slices(fab, geom, 0, "lo")
        if sl is not None:
            data[sl] = self.freestream(data[sl].shape[1:])
        # x-hi: supersonic outflow (zero-gradient)
        sl = self.outside_domain_slices(fab, geom, 0, "hi")
        if sl is not None:
            gap = data.shape[1] - sl[1].start
            data[:, -gap:] = data[:, -gap - 1: -gap]
        # y-hi: freestream (the shock should exit the outflow, not the top)
        sl = self.outside_domain_slices(fab, geom, 1, "hi")
        if sl is not None:
            data[sl] = self.freestream(data[sl].shape[1:])
        # y-lo: curvilinear slip wall
        sl = self.outside_domain_slices(fab, geom, 1, "lo")
        if sl is not None:
            self._wall_bc(fab, geom, sl, coords)

    def _wall_bc(self, fab, geom, sl, coords) -> None:
        """Mirror ghosts about the local wall tangent from stored coords."""
        lay = self.layout
        data = fab.data
        gap = sl[2].stop
        # wall tangent from the first interior grid line (j = gap)
        if coords is not None:
            x = coords.whole()[0][:, gap]
            y = coords.whole()[1][:, gap]
            tx = np.gradient(x)
            ty = np.gradient(y)
            norm = np.sqrt(tx**2 + ty**2)
            tx /= norm
            ty /= norm
        else:  # fall back to a flat wall
            tx = np.ones(data.shape[1])
            ty = np.zeros(data.shape[1])
        for g in range(gap):
            ghost = [slice(None)] * data.ndim
            ghost[2] = slice(g, g + 1)
            mirror = [slice(None)] * data.ndim
            mirror[2] = slice(2 * gap - 1 - g, 2 * gap - g)
            refl = data[tuple(mirror)].copy()
            mx = refl[lay.mom(0), :, 0]
            my = refl[lay.mom(1), :, 0]
            # reflect momentum about the tangent: m' = 2(m.t)t - m
            mt = mx * tx + my * ty
            refl[lay.mom(0), :, 0] = 2 * mt * tx - mx
            refl[lay.mom(1), :, 0] = 2 * mt * ty - my
            data[tuple(ghost)] = refl

    # -- diagnostics -----------------------------------------------------
    def theory(self) -> dict:
        """Exact oblique-shock targets for validation."""
        s = self.shock
        return {
            "beta_deg": math.degrees(s.beta),
            "p_ratio": s.pressure_ratio,
            "rho_ratio": s.density_ratio,
            "mach2": s.mach2,
        }
