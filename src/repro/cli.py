"""Command-line driver: run CRoCCo from an AMReX-style input deck.

Usage::

    python -m repro inputs.deck [--steps N | --time T] [--plotfile DIR]
                    [--profile] [--record DIR] [--executor serial|pool]

Deck keys (beyond the ones :class:`repro.io.inputs.InputDeck` maps onto
:class:`~repro.core.crocco.CroccoConfig`)::

    crocco.case     = dmr | sod | vortex | ignition | ramp
    crocco.curvilinear = true        # DMR only
    amr.n_cell      = 128 32         # case resolution
    run.steps       = 100            # or run.time = 0.05
    run.plotfile    = plt_out        # optional output directory
    run.checkpoint  = chk_out        # write a restartable snapshot at the end
    run.restart     = chk_in         # resume from a snapshot
    run.report_every = 10
    run.record      = run_out        # write run_out/trace.json + metrics.jsonl
    run.trace_out   = trace.json     # Chrome trace-event JSON (Perfetto)
    run.metrics_out = metrics.jsonl  # per-timestep metrics time series
    run.profile     = true           # print profiler + ledger reports at end
    run.cache_dir   = cache          # cross-run immutable cache directory
    run.max_steps   = 200            # hard step budget (watchdog-enforced)
    run.max_wall_s  = 60             # hard wall budget, seconds
    runtime.executor = serial        # or pool: multiprocessing task runtime
    runtime.workers  = 4             # pool worker count (default: CPU count)
    backend.target   = auto          # execution backend: host | device |
                                     # fused | auto (or REPRO_BACKEND)
    resilience.watchdog = true       # per-step NaN/positivity/CFL validation
    resilience.max_step_retries = 3  # rollback/retry budget per step
    resilience.retries      = 2      # supervised-pool per-task retry budget
    resilience.backoff      = 0.05   # task-retry backoff base (seconds)
    resilience.task_timeout = 30     # seconds before a pool task is lost
    resilience.autocheckpoint_every = 0   # crash-safe checkpoint cadence
    resilience.autocheckpoint_dir   = autochk
    resilience.faults.plan  = kill_worker@2.1 nan@4   # fault injection
    resilience.faults.seed  = 7      # (or the REPRO_FAULTS env var)

Summarize a recorded run afterwards with ``python -m repro.report DIR``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.cases.dmr import DoubleMachReflection
from repro.cases.ramp import CompressionRamp
from repro.cases.reacting import IgnitionFront
from repro.cases.shocktube import SodShockTube
from repro.cases.vortex import IsentropicVortex
from repro.core.crocco import ConfigError, Crocco
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.inputs import InputDeck
from repro.io.plotfile import write_plotfile


def build_case(deck: InputDeck):
    """Instantiate the deck's case."""
    name = deck.get_str("crocco.case", "sod")
    cells = deck.domain_cells()
    if name == "sod":
        return SodShockTube(ncells=cells[0] if cells else 128)
    if name == "vortex":
        return IsentropicVortex(ncells=cells[0] if cells else 64)
    if name == "dmr":
        nc = tuple(cells) if cells else (128, 32)
        return DoubleMachReflection(
            ncells=nc, curvilinear=bool(deck.get_bool("crocco.curvilinear", False))
        )
    if name == "ignition":
        return IgnitionFront(ncells=cells[0] if cells else 128)
    if name == "ramp":
        nc = tuple(cells) if cells else (96, 48)
        return CompressionRamp(
            ncells=nc,
            mach=deck.get_float("ramp.mach", 3.0),
            angle_deg=deck.get_float("ramp.angle", 15.0),
        )
    raise SystemExit(f"unknown crocco.case {name!r} "
                     "(options: sod, vortex, dmr, ignition, ramp)")


def main(argv: Optional[list] = None) -> int:
    """Parse arguments, run the deck, return a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Run CRoCCo from an input deck."
    )
    parser.add_argument("deck", help="input deck file (key = value lines)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override run.steps")
    parser.add_argument("--time", type=float, default=None,
                        help="override run.time (simulated seconds)")
    parser.add_argument("--plotfile", default=None,
                        help="override run.plotfile output directory")
    parser.add_argument("--profile", action="store_true",
                        help="print the TinyProfiler report and the ledger "
                             "per-kind byte summary at end of run")
    parser.add_argument("--record", default=None, metavar="DIR",
                        help="record the run: write DIR/trace.json and "
                             "DIR/metrics.jsonl (see python -m repro.report)")
    parser.add_argument("--trace-out", default=None,
                        help="override run.trace_out (Chrome trace JSON path)")
    parser.add_argument("--metrics-out", default=None,
                        help="override run.metrics_out (metrics JSONL path)")
    parser.add_argument("--executor", default=None,
                        choices=["serial", "pool"],
                        help="override runtime.executor: 'serial' "
                             "(deterministic in-process) or 'pool' "
                             "(multiprocessing workers, comm/compute overlap)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override runtime.workers (pool size)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cross-run immutable cache directory (grid "
                             "coords, curvilinear metrics, EOS tables, "
                             "interp weights; overrides run.cache_dir)")
    # no argparse choices: the registry resolver validates the name and
    # an unknown target is a ConfigError (exit 2) listing the registered
    # targets, so plugin-registered targets work from the CLI unchanged
    parser.add_argument("--backend", default=None,
                        help="override backend.target: 'host' (plain "
                             "NumPy), 'device' (recorded launches on the "
                             "simulated GPUs), 'fused' (optimizing), "
                             "'auto' (per version), or any registered "
                             "target name")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="fault-injection plan, e.g. "
                             "'kill_worker@2.1;nan@4' (overrides "
                             "resilience.faults.plan / REPRO_FAULTS)")
    parser.add_argument("--faults-seed", type=int, default=None,
                        help="override resilience.faults.seed")
    parser.add_argument("--autocheckpoint-every", type=int, default=None,
                        metavar="N",
                        help="crash-safe checkpoint every N steps "
                             "(overrides resilience.autocheckpoint_every)")
    parser.add_argument("--autocheckpoint-dir", default=None, metavar="DIR",
                        help="override resilience.autocheckpoint_dir")
    parser.add_argument("--no-watchdog", action="store_true",
                        help="disable per-step validation and step retry")
    args = parser.parse_args(argv)

    deck = InputDeck.from_file(args.deck)
    case = build_case(deck)
    try:
        config = deck.to_crocco_config()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.record:
        from pathlib import Path

        config.trace_out = str(Path(args.record) / "trace.json")
        config.metrics_out = str(Path(args.record) / "metrics.jsonl")
    if args.trace_out:
        config.trace_out = args.trace_out
    if args.metrics_out:
        config.metrics_out = args.metrics_out
    if args.profile:
        config.profile = True
    if args.executor:
        config.executor = args.executor
    if args.workers is not None:
        config.workers = args.workers
    if args.cache_dir:
        config.cache_dir = args.cache_dir
    if args.backend:
        config.backend_target = args.backend
    if args.faults is not None:
        config.faults_plan = args.faults
    if args.faults_seed is not None:
        config.faults_seed = args.faults_seed
    if args.autocheckpoint_every is not None:
        config.autocheckpoint_every = args.autocheckpoint_every
    if args.autocheckpoint_dir is not None:
        config.autocheckpoint_dir = args.autocheckpoint_dir
    if args.no_watchdog:
        config.watchdog = False
    try:
        sim = Crocco(case, config)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    restart = deck.get_str("run.restart")
    if restart:
        load_checkpoint(restart, sim)
        print(f"restarted from {restart} at step {sim.step_count}, "
              f"t = {sim.time:.5f}")
    else:
        sim.initialize()
    print(f"case {case.name}: {case.domain_cells} cells, "
          f"CRoCCo {config.version}, {sim.finest_level + 1} level(s), "
          f"{sim.comm.nranks} simulated rank(s), "
          f"executor {sim.engine.name}")
    if sim.faults is not None:
        print(f"fault injection active: {config.faults_plan!r} "
              f"(seed {sim.faults.seed})")

    nsteps = args.steps if args.steps is not None else deck.get_int("run.steps")
    t_end = args.time if args.time is not None else deck.get_float("run.time")
    if nsteps is None and t_end is None:
        nsteps = 10
    report = deck.get_int("run.report_every", 10)

    def progress() -> None:
        """One status line: step, time, dt, density bounds."""
        mn, mx = sim.min_max(0)
        print(f"  step {sim.step_count:5d}  t = {sim.time:.5f}  "
              f"dt = {sim.dt_history[-1]:.3e}  rho in [{mn:.3f}, {mx:.3f}]")

    try:
        while True:
            if nsteps is not None and sim.step_count >= nsteps:
                break
            if t_end is not None and sim.time >= t_end:
                break
            sim.step()
            if report and sim.step_count % report == 0:
                progress()
        if not report or sim.step_count % report != 0:
            progress()

        out = args.plotfile or deck.get_str("run.plotfile")
        if out:
            path = write_plotfile(out, sim)
            print(f"wrote plotfile {path}")
        chk = deck.get_str("run.checkpoint")
        if chk:
            path = save_checkpoint(chk, sim)
            print(f"wrote checkpoint {path}")
        if config.profile:
            print(sim.profiler.report())
            print(ledger_summary(sim.comm.ledger))
        if sim.faults is not None:
            print(resilience_summary(sim))
    finally:
        # guaranteed teardown: no leaked pool workers or shm segments,
        # even when a step dies beyond every retry
        sim.close()
    return 0


def resilience_summary(sim) -> str:
    """Faults injected vs. recovery actions taken, one line each."""
    lines = ["Resilience summary", "-" * 60]
    fired = sim.faults.fired_by_kind() if sim.faults is not None else {}
    for kind, n in sorted(fired.items()):
        lines.append(f"injected {kind:<14s} x{n}")
    if sim.faults is not None and sim.faults.pending():
        tokens = ", ".join(s.token() for s in sim.faults.pending())
        lines.append(f"(unfired: {tokens})")
    stats = sim.resilience.as_dict()
    for key in sorted(stats):
        if stats[key]:
            lines.append(f"{key:<22s} {stats[key]}")
    return "\n".join(lines)


def ledger_summary(ledger) -> str:
    """Per-kind message/byte totals with the on/off-node split."""
    lines = ["CommLedger summary", "-" * 60]
    by_kind = ledger.by_kind()
    if not by_kind:
        lines.append("(no traffic recorded)")
    for kind in sorted(by_kind):
        count, volume = by_kind[kind]
        lines.append(
            f"{kind:<14s} msgs={count:<8d} bytes={volume:<12d} "
            f"on-node={ledger.on_node_bytes(kind):<12d} "
            f"off-node={ledger.off_node_bytes(kind)}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
