"""The CRoCCo numerics kernels in their three "ported" forms.

The paper's port proceeds Fortran -> C++ -> GPU (Sec. IV).  We reproduce
the *software structure* of that port:

- every kernel (WENOx, WENOy, WENOz, Viscous, Update, ComputeDt) is
  invoked through a backend (:mod:`repro.kernels.backends`) named
  ``fortran``, ``cpp`` or ``gpu``;
- the ``fortran`` and ``cpp`` backends compute identical mathematics with
  different floating-point accumulation orders, reproducing the mechanism
  behind the paper's ~1e-7 L2-norm drift between languages;
- the ``gpu`` backend evaluates the same arithmetic as ``cpp`` (the paper
  reports no accuracy change on GPU) but executes through a simulated
  device (:mod:`repro.kernels.device`): scratch arrays are allocated in
  "global memory" before launch (never inside kernels), launches are
  recorded with flop/byte counts for the roofline model, and device-memory
  capacity is enforced — reproducing the 16 GB V100 limit that shaped the
  paper's problem sizes.
"""

from repro.kernels.device import DeviceMemoryError, GpuDevice
from repro.kernels.api import KernelSet, make_backend

__all__ = ["GpuDevice", "DeviceMemoryError", "KernelSet", "make_backend"]
