"""Simulated GPU device: memory arena, launch records, reductions.

We have no physical GPU, so this module supplies the *behavioral* device
the GPU backend runs on:

- a global-memory allocator with a hard capacity (16 GB on a Summit V100),
  raising :class:`DeviceMemoryError` exactly where the real code would
  fault — the paper reports grid counts beyond 2.0e5 points spilling V100
  memory, which shaped both scaling studies;
- kernel-launch records (name, points, flops, bytes at each memory level)
  that feed the hierarchical roofline model of Fig. 4;
- an ``amrex::ParallelFor``-style launch helper and an
  ``amrex::ReduceData``-style reduction helper, mirroring the API the
  paper ports its kernels onto.

Arithmetic runs on the host NumPy arrays; only the accounting is
simulated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Summit NVIDIA V100 device memory
V100_MEMORY_BYTES = 16 * 1024**3


class DeviceMemoryError(MemoryError):
    """Raised when a device allocation exceeds the arena capacity."""


@dataclass
class LaunchRecord:
    """One recorded kernel launch."""

    name: str
    npoints: int
    flops: int
    dram_bytes: int
    l2_bytes: int
    l1_bytes: int
    #: coarse grouping for the run report (flux / update / fillpatch /
    #: interp / averagedown / tagging / reduction)
    kernel_class: str = "flux"


class DeviceArray:
    """A NumPy array accounted against the device arena."""

    def __init__(self, device: "GpuDevice", shape: Tuple[int, ...],
                 dtype=np.float64) -> None:
        self._device = device
        self.data = np.zeros(shape, dtype=dtype)
        self._nbytes = self.data.nbytes
        device._allocate(self._nbytes)
        self._freed = False

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def free(self) -> None:
        if not self._freed:
            self._device._release(self._nbytes)
            self._freed = True

    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, *exc) -> None:
        self.free()


class GpuDevice:
    """A simulated accelerator with bounded memory and launch accounting."""

    def __init__(self, name: str = "V100",
                 memory_bytes: int = V100_MEMORY_BYTES) -> None:
        self.name = name
        self.memory_bytes = memory_bytes
        self.bytes_in_use = 0
        self.high_water = 0
        self.launches: List[LaunchRecord] = []
        self.alloc_count = 0
        self._listeners: List[object] = []

    # -- listeners ---------------------------------------------------------
    def add_listener(self, listener: object) -> None:
        """Attach an observer: ``on_launch(device, record, wall_seconds)``
        fires after every recorded launch or reduction."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify_launch(self, rec: LaunchRecord, wall_seconds: float) -> None:
        for listener in self._listeners:
            listener.on_launch(self, rec, wall_seconds)

    # -- memory -----------------------------------------------------------
    def _allocate(self, nbytes: int) -> None:
        if self.bytes_in_use + nbytes > self.memory_bytes:
            raise DeviceMemoryError(
                f"device {self.name}: allocation of {nbytes} bytes exceeds "
                f"capacity ({self.bytes_in_use}/{self.memory_bytes} in use)"
            )
        self.bytes_in_use += nbytes
        self.high_water = max(self.high_water, self.bytes_in_use)
        self.alloc_count += 1

    def _release(self, nbytes: int) -> None:
        self.bytes_in_use -= nbytes
        if self.bytes_in_use < 0:
            raise RuntimeError("device arena double free")

    def alloc(self, shape: Tuple[int, ...], dtype=np.float64) -> DeviceArray:
        """Allocate a scratch array in device global memory.

        Per the paper (Sec. IV-B), scratch arrays are allocated from the
        *host* before kernel launch — dynamic allocation inside a GPU
        kernel is a major performance impediment — so the backend calls
        this up front and passes arrays into launches.
        """
        return DeviceArray(self, shape, dtype)

    def upload(self, arr: np.ndarray) -> DeviceArray:
        """Copy a host array to the device (accounted allocation + copy)."""
        d = DeviceArray(self, arr.shape, arr.dtype)
        d.data[...] = arr
        return d

    # -- launches ----------------------------------------------------------
    def launch(
        self,
        name: str,
        fn: Callable[[], Optional[np.ndarray]],
        npoints: int,
        flops_per_point: float,
        dram_bytes_per_point: float,
        l2_amplification: float = 1.6,
        l1_amplification: float = 4.0,
        kernel_class: str = "flux",
    ):
        """Run ``fn`` as one recorded kernel launch (ParallelFor semantics).

        ``l2_amplification``/``l1_amplification`` model how much more
        traffic the stencil kernels generate at the inner cache levels than
        at DRAM (each cell is re-read by every stencil that covers it; the
        caches absorb most but not all of the reuse).
        """
        # the timed window covers only fn(); record construction and
        # listener notification happen after `elapsed` is taken so
        # observability overhead never inflates charged kernel wall time
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        dram = int(npoints * dram_bytes_per_point)
        rec = LaunchRecord(
            name=name,
            npoints=npoints,
            flops=int(npoints * flops_per_point),
            dram_bytes=dram,
            l2_bytes=int(dram * l2_amplification),
            l1_bytes=int(dram * l1_amplification),
            kernel_class=kernel_class,
        )
        self.launches.append(rec)
        self._notify_launch(rec, elapsed)
        return result

    def reduce(self, name: str, values: np.ndarray, op: str = "min",
               kernel_class: str = "reduction") -> float:
        """amrex::ReduceData-style device reduction (used by ComputeDt)."""
        ops = {"min": np.min, "max": np.max, "sum": np.sum}
        if op not in ops:
            raise ValueError(f"unknown reduction op {op!r}")
        n = int(np.asarray(values).size)
        # listeners fire outside the timed window (see launch())
        t0 = time.perf_counter()
        result = float(ops[op](values))
        elapsed = time.perf_counter() - t0
        rec = LaunchRecord(
            name=name, npoints=n, flops=n,
            dram_bytes=n * 8, l2_bytes=n * 8, l1_bytes=n * 8,
            kernel_class=kernel_class,
        )
        self.launches.append(rec)
        self._notify_launch(rec, elapsed)
        return result

    # -- summaries --------------------------------------------------------
    def launches_by_kernel(self) -> Dict[str, List[LaunchRecord]]:
        out: Dict[str, List[LaunchRecord]] = {}
        for rec in self.launches:
            out.setdefault(rec.name, []).append(rec)
        return out

    def totals(self, name: Optional[str] = None) -> LaunchRecord:
        """Aggregate record over all launches (optionally one kernel)."""
        recs = [r for r in self.launches if name is None or r.name == name]
        return LaunchRecord(
            name=name or "total",
            npoints=sum(r.npoints for r in recs),
            flops=sum(r.flops for r in recs),
            dram_bytes=sum(r.dram_bytes for r in recs),
            l2_bytes=sum(r.l2_bytes for r in recs),
            l1_bytes=sum(r.l1_bytes for r in recs),
        )

    def reset(self) -> None:
        self.launches.clear()

    def __repr__(self) -> str:
        return (
            f"GpuDevice({self.name}, {self.bytes_in_use}/{self.memory_bytes} B, "
            f"{len(self.launches)} launches)"
        )
