"""Fused WENO sweep for the ``fused`` execution target.

The host path (:meth:`repro.numerics.fluxes.ConvectiveFlux.divergence`)
launches one kernel per direction, each of which recomputes the
primitive variables, reconstructs every interface of the *grown* box and
crops afterwards, and allocates every intermediate array.  This module
is the optimized equivalent — one wide launch per right-hand side that
applies the three classic port optimizations (STREAmS-2's "fewer, wider
kernels"; the paper's scratch-array hoisting, Sec. IV-B):

1. **Shared primitives** — ``rho, vel, p, a`` are computed once and
   reused by all ``dim`` directional sweeps.
2. **Work restriction** — transverse ghost regions are cropped *before*
   reconstruction (exact: reconstruction only couples cells along the
   sweep axis), and only the ``nvalid + 1`` needed interfaces are
   combined, instead of every interface of the grown box.
3. **Scratch reuse + fast combination** — all intermediates live in a
   shape-keyed :class:`repro.backend.fused.ScratchCache` and the WENO
   combination runs through ``out=`` ufuncs with a rank-2 smoothness
   factorization:  ``smoothness_matrix`` is ``minv.T @ diag(0, 1, K)
   @ minv`` with ``K = 1/3 + 4``, so ``beta = (d1 . v)^2 + K (d2 . v)^2``
   — 2 dot products instead of a 9-term quadratic form.

Optionally the combination is JIT-compiled with numba (soft dependency;
see :func:`get_jit_combine`) into a single pass over contiguous rows.

Accuracy contract: the Lax-Friedrichs ``alpha`` is still computed on the
**full grown array** — bitwise identical to the host path — so the only
divergence from ``host`` is floating-point re-association inside the
combination, bounded at 1e-7 relative L2 on the DMR deck by
``tests/backend/test_fused.py`` (the paper's port-validation criterion).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.numerics.fluxes import curvilinear_flux, wave_speed
from repro.numerics.weno import (CANDIDATE_OFFSETS, WENO_EPS_FLOOR,
                                 _cell_average_matrix, interface_coefficients)

#: the d^2 energy weight in the smoothness quadrature
#: (int p'^2 -> a1^2, int p''^2 -> (1/3 + 4) a2^2; see smoothness_matrix)
BETA_K = 1.0 / 3.0 + 4.0


@lru_cache(maxsize=None)
def stencil_tables(nst: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-stencil coefficient tables ``(C, D1, D2)``, each ``(nst, 3)``.

    ``C[r]`` are the interface-value coefficients; ``D1[r]``/``D2[r]``
    are rows 1 and 2 of ``inv(_cell_average_matrix)`` so that
    ``beta_r = (D1[r] . v)^2 + BETA_K * (D2[r] . v)^2`` equals
    ``v.T @ smoothness_matrix @ v`` exactly (same factorization, fewer
    flops).  Stencil ``r`` reads window cells ``r, r+1, r+2`` (window
    index = offset + 2).
    """
    C = np.array([interface_coefficients(CANDIDATE_OFFSETS[r])
                  for r in range(nst)])
    minvs = [np.linalg.inv(_cell_average_matrix(CANDIDATE_OFFSETS[r]))
             for r in range(nst)]
    D1 = np.array([m[1] for m in minvs])
    D2 = np.array([m[2] for m in minvs])
    return C, D1, D2


# -- fast NumPy combination ---------------------------------------------------

def combine_into(scheme, cells, scratch, out: np.ndarray,
                 add: bool = False) -> None:
    """WENO-combine a 6-cell window stack with ``out=`` ufuncs + scratch.

    Numerically equivalent to :meth:`WenoScheme.combine` (identical
    algebra, different floating-point association).  ``cells`` is the
    list of 6 same-shaped arrays at offsets -2..3; with ``add`` the
    result is accumulated into ``out`` instead of overwriting it.
    """
    nst = scheme.n_stencils
    w = scheme.linear_weights()
    C, D1, D2 = stencil_tables(nst)
    S = out.shape
    t1 = scratch.get("cmb_t1", S)
    t2 = scratch.get("cmb_t2", S)
    eps_eff = scratch.get("cmb_eps", S)
    betas = scratch.get("cmb_betas", (nst,) + S)

    # eps_eff = eps * <v^2> + floor over the full 6-point window
    np.multiply(cells[0], cells[0], out=eps_eff)
    for c in cells[1:]:
        np.multiply(c, c, out=t1)
        eps_eff += t1
    eps_eff *= scheme.eps / 6.0
    eps_eff += WENO_EPS_FLOOR

    # smoothness indicators via the rank-2 factorization
    for r in range(nst):
        v0, v1, v2 = cells[r], cells[r + 1], cells[r + 2]
        b = betas[r]
        np.multiply(v0, D1[r, 0], out=t1)
        np.multiply(v1, D1[r, 1], out=t2)
        t1 += t2
        np.multiply(v2, D1[r, 2], out=t2)
        t1 += t2
        np.multiply(t1, t1, out=b)
        np.multiply(v0, D2[r, 0], out=t1)
        np.multiply(v1, D2[r, 1], out=t2)
        t1 += t2
        np.multiply(v2, D2[r, 2], out=t2)
        t1 += t2
        np.multiply(t1, t1, out=t1)
        t1 *= BETA_K
        b += t1

    # relative-smoothness limiter inputs, before betas become alphas
    rough = None
    if nst == 4 and scheme.downwind_limit > 0:
        bcut = scratch.get("cmb_bcut", S)
        bmax = scratch.get("cmb_bmax", S)
        np.minimum(betas[0], betas[1], out=bcut)
        np.minimum(bcut, betas[2], out=bcut)
        bcut += eps_eff
        bcut *= scheme.downwind_limit
        np.maximum(betas[0], betas[1], out=bmax)
        np.maximum(bmax, betas[2], out=bmax)
        np.maximum(bmax, betas[3], out=bmax)
        rough = scratch.get("cmb_rough", S, dtype=bool)
        np.greater(bmax, bcut, out=rough)

    # betas -> alphas in place: alpha_r = w_r / (eps_eff + beta_r)^2
    for r in range(nst):
        b = betas[r]
        b += eps_eff
        np.multiply(b, b, out=b)
        np.divide(w[r], b, out=b)
    alphas = betas

    np.add(alphas[0], alphas[1], out=t1)
    t1 += alphas[2]
    if nst == 4:
        # downwind cap: alpha3 <= C3/(1-C3) * sum(upwind alphas)
        np.multiply(t1, w[3] / (1.0 - w[3]), out=t2)
        np.minimum(alphas[3], t2, out=alphas[3])
        if rough is not None:
            alphas[3][rough] = 0.0
        t1 += alphas[3]  # t1 = alpha sum

    # numerator sum_r alpha_r q_r
    q = scratch.get("cmb_q", S)
    num = scratch.get("cmb_num", S)
    for r in range(nst):
        v0, v1, v2 = cells[r], cells[r + 1], cells[r + 2]
        np.multiply(v0, C[r, 0], out=q)
        np.multiply(v1, C[r, 1], out=t2)
        q += t2
        np.multiply(v2, C[r, 2], out=t2)
        q += t2
        q *= alphas[r]
        if r == 0:
            np.copyto(num, q)
        else:
            num += q

    if add:
        np.divide(num, t1, out=num)
        out += num
    else:
        np.divide(num, t1, out=out)


# -- optional numba JIT -------------------------------------------------------

_JIT_COMBINE = None
_JIT_FAILED = False


def get_jit_combine():
    """Compile (once) the numba row-combination kernel, or return None.

    numba is a *soft* dependency: it is only imported here, lazily, and
    any failure (missing module, compilation error) permanently falls
    back to the pure-NumPy path.  The kernel handles the 4-candidate
    (symbo/symoo) schemes; js5 always uses the NumPy path.
    """
    global _JIT_COMBINE, _JIT_FAILED
    if _JIT_COMBINE is not None or _JIT_FAILED:
        return _JIT_COMBINE
    try:
        import numba

        @numba.njit(cache=False, inline="always")
        def _window(v0, v1, v2, v3, v4, v5, C, D1, D2, w, eps, floor, limit):
            K = 1.0 / 3.0 + 4.0
            scale2 = (v0 * v0 + v1 * v1 + v2 * v2
                      + v3 * v3 + v4 * v4 + v5 * v5) / 6.0
            eps_eff = eps * scale2 + floor
            t = D1[0, 0] * v0 + D1[0, 1] * v1 + D1[0, 2] * v2
            s = D2[0, 0] * v0 + D2[0, 1] * v1 + D2[0, 2] * v2
            b0 = t * t + K * s * s
            t = D1[1, 0] * v1 + D1[1, 1] * v2 + D1[1, 2] * v3
            s = D2[1, 0] * v1 + D2[1, 1] * v2 + D2[1, 2] * v3
            b1 = t * t + K * s * s
            t = D1[2, 0] * v2 + D1[2, 1] * v3 + D1[2, 2] * v4
            s = D2[2, 0] * v2 + D2[2, 1] * v3 + D2[2, 2] * v4
            b2 = t * t + K * s * s
            t = D1[3, 0] * v3 + D1[3, 1] * v4 + D1[3, 2] * v5
            s = D2[3, 0] * v3 + D2[3, 1] * v4 + D2[3, 2] * v5
            b3 = t * t + K * s * s
            a0 = w[0] / ((eps_eff + b0) * (eps_eff + b0))
            a1 = w[1] / ((eps_eff + b1) * (eps_eff + b1))
            a2 = w[2] / ((eps_eff + b2) * (eps_eff + b2))
            a3 = w[3] / ((eps_eff + b3) * (eps_eff + b3))
            cap = w[3] / (1.0 - w[3]) * (a0 + a1 + a2)
            if a3 > cap:
                a3 = cap
            if limit > 0.0:
                bmin = min(b0, min(b1, b2))
                bmax = max(max(b0, max(b1, b2)), b3)
                if bmax > limit * (bmin + eps_eff):
                    a3 = 0.0
            q0 = C[0, 0] * v0 + C[0, 1] * v1 + C[0, 2] * v2
            q1 = C[1, 0] * v1 + C[1, 1] * v2 + C[1, 2] * v3
            q2 = C[2, 0] * v2 + C[2, 1] * v3 + C[2, 2] * v4
            q3 = C[3, 0] * v3 + C[3, 1] * v4 + C[3, 2] * v5
            return ((a0 * q0 + a1 * q1 + a2 * q2 + a3 * q3)
                    / (a0 + a1 + a2 + a3))

        @numba.njit(cache=False)
        def combine_rows(vp, vm, start, C, D1, D2, w, eps, floor, limit,
                         out):
            rows = vp.shape[0]
            nif = out.shape[1]
            for i in range(rows):
                for j in range(nif):
                    b = start + j
                    # plus part: forward window of F+; minus part: the
                    # mirror image = reversed window of F-
                    out[i, j] = _window(
                        vp[i, b], vp[i, b + 1], vp[i, b + 2],
                        vp[i, b + 3], vp[i, b + 4], vp[i, b + 5],
                        C, D1, D2, w, eps, floor, limit,
                    ) + _window(
                        vm[i, b + 5], vm[i, b + 4], vm[i, b + 3],
                        vm[i, b + 2], vm[i, b + 1], vm[i, b],
                        C, D1, D2, w, eps, floor, limit,
                    )

        _JIT_COMBINE = combine_rows
    except Exception:
        _JIT_FAILED = True
        _JIT_COMBINE = None
    return _JIT_COMBINE


# -- fused sweep --------------------------------------------------------------

def _crop_transverse(arr: np.ndarray, d: int, ng: int,
                     grid_shape: Tuple[int, ...]) -> np.ndarray:
    """View of ``arr`` cropped to valid in every grid direction but ``d``.

    The grid axes are the trailing ``dim`` axes; size-1 (broadcast) axes
    are left alone, like :func:`repro.numerics.fluxes._crop_to_valid`.
    """
    dim = len(grid_shape)
    off = arr.ndim - dim
    sl = [slice(None)] * arr.ndim
    for t in range(dim):
        if t == d:
            continue
        n = grid_shape[t]
        if arr.shape[off + t] == n and n > 1:
            sl[off + t] = slice(ng, n - ng)
    return arr[tuple(sl)]


def fused_sweep(layout, eos, convective, u: np.ndarray, metrics, ng: int,
                scratch, jit: bool = False,
                reverse: bool = True) -> np.ndarray:
    """All directional convective sweeps as one fused computation.

    Returns the accumulated convective right-hand side over the valid
    region — the same value (up to floating-point re-association) as
    summing :meth:`ConvectiveFlux.divergence` over directions in the
    same order (``reverse`` selects the translated cpp/gpu ordering).
    """
    if ng < convective.nghost:
        raise ValueError(
            f"need at least {convective.nghost} ghost cells, got {ng}")
    dim = layout.dim
    grid_shape = u.shape[1:]
    valid_shape = tuple(s - 2 * ng for s in grid_shape)
    scheme = convective.scheme
    dtype = u.dtype

    # shared primitives: computed once, used by every direction
    rho, vel, p = eos.primitives(layout, u)
    a = eos.sound_speed(layout, u)
    J = metrics.jacobian()
    Jb = np.broadcast_to(J, grid_shape)
    Jvalid = Jb[tuple(slice(ng, s - ng) for s in grid_shape)]

    jit_rows = get_jit_combine() if (jit and scheme.n_stencils == 4) else None

    # the return value is a real allocation (scratch arrays are recycled
    # by the next launch; the caller keeps the RHS across the RK update)
    acc = np.zeros((layout.ncons,) + valid_shape, dtype=dtype)

    directions = range(dim - 1, -1, -1) if reverse else range(dim)
    for d in directions:
        axis = d + 1
        m = metrics.m(d)
        # LF alpha on the FULL grown array: bitwise-identical to the
        # host path (a max over a superset of the cropped cells would
        # round the same, but keeping the op sequence identical makes
        # the drift argument purely about the combination step)
        lam = wave_speed(vel, a, m, J)
        alpha = float(lam.max())

        # transverse pre-crop: reconstruction along `axis` never mixes
        # transverse neighbors, so ghost rows are dead work
        u_c = _crop_transverse(u, d, ng, grid_shape)
        vel_c = _crop_transverse(vel, d, ng, grid_shape)
        p_c = _crop_transverse(p, d, ng, grid_shape)
        m_c = _crop_transverse(m, d, ng, grid_shape)
        J_c = _crop_transverse(Jb, d, ng, grid_shape)

        fhat = curvilinear_flux(layout, u_c, vel_c, p_c, m_c,
                                form=convective.split_form)
        S = fhat.shape
        ju = scratch.get("ju", S, dtype)
        fplus = scratch.get("fplus", S, dtype)
        fminus = scratch.get("fminus", S, dtype)
        np.multiply(u_c, J_c[None], out=ju)
        ju *= alpha
        np.subtract(fhat, ju, out=fminus)
        fminus *= 0.5
        np.add(fhat, ju, out=fplus)
        fplus *= 0.5

        # only the nv+1 interfaces of the valid region are combined
        nv = grid_shape[d] - 2 * ng
        nif = nv + 1
        start = ng - 3
        vp = np.moveaxis(fplus, axis, -1)
        vm = np.moveaxis(fminus, axis, -1)
        lead = vp.shape[:-1]
        f_iface = scratch.get("f_iface", lead + (nif,), dtype)
        if jit_rows is not None:
            n = vp.shape[-1]
            rows = int(np.prod(lead))
            vpc = scratch.get("jit_vp", (rows, n), dtype)
            vmc = scratch.get("jit_vm", (rows, n), dtype)
            vpc.reshape(vp.shape)[...] = vp
            vmc.reshape(vm.shape)[...] = vm
            C, D1, D2 = stencil_tables(4)
            jit_rows(vpc, vmc, start, C, D1, D2, scheme.linear_weights(),
                     scheme.eps, WENO_EPS_FLOOR, scheme.downwind_limit,
                     f_iface.reshape(rows, nif))
        else:
            cells = [vp[..., start + k: start + k + nif] for k in range(6)]
            combine_into(scheme, cells, scratch, f_iface)
            cells_m = [vm[..., start + k: start + k + nif]
                       for k in range(6)]
            # mirror-image reconstruction == combine of the reversed
            # window (flip-reconstruct-flip without the flips)
            combine_into(scheme, cells_m[::-1], scratch, f_iface, add=True)

        df = scratch.get("df", lead + (nv,), dtype)
        np.subtract(f_iface[..., 1:], f_iface[..., :-1], out=df)
        Jv = np.moveaxis(Jvalid, d, -1)
        np.divide(df, Jv, out=df)
        acc_view = np.moveaxis(acc, axis, -1)
        acc_view -= df
    return acc
