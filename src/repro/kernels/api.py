"""Kernel backends: the Fortran -> C++ -> GPU port, functionally.

A :class:`KernelSet` bundles the per-patch kernels CRoCCo's RK3 advance
calls (Algorithm 2): ``WENOx/y/z``, ``Viscous``, ``Update``, plus the
``ComputeDt`` rate estimate.  Three backends exist:

``fortran``
    The original kernel organization: the RK right-hand side accumulates
    direction sweeps in x, y, z order and assembles fluxes with
    Fortran-style left-to-right summation.

``cpp``
    The translated kernels.  Mathematically identical, but the compiler
    re-associates differently: we model this by accumulating the direction
    sweeps in reverse order and pairing additions differently.  Running
    both backends on the same problem produces a small floating-point
    drift whose L2 norm plateaus near machine-precision-amplified levels —
    the paper's 1e-7 validation criterion (Sec. IV-A).

``gpu``
    Same arithmetic as ``cpp`` (the paper observed no accuracy change on
    GPU), but executed through the simulated device: per-patch state is
    resident in device memory, scratch arrays are allocated host-side
    before launch, each kernel is a recorded launch with flop/byte
    budgets, and reductions use the device ``ReduceData`` path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.backend import (DeviceBackend, ExecutionBackend, HostBackend,
                           LaunchSpec)
from repro.kernels.counts import (
    BUDGETS,
    COMPUTEDT_BUDGET,
    UPDATE_BUDGET,
    VISCOUS_BUDGET,
    WENO_BUDGET,
    fused_weno_budget,
)
from repro.kernels.device import GpuDevice
from repro.numerics.cfl import local_max_rate
from repro.numerics.fluxes import ConvectiveFlux
from repro.numerics.metrics import Metrics
from repro.numerics.rk3 import rk3_stage
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux

BACKENDS = ("fortran", "cpp", "gpu")

DIRECTION_NAMES = ("WENOx", "WENOy", "WENOz")


@dataclass
class KernelSet:
    """Backend-specific kernel implementations for one solver configuration."""

    backend: str
    layout: StateLayout
    eos: object
    convective: ConvectiveFlux
    viscous: Optional[ViscousFlux] = None
    device: Optional[GpuDevice] = None
    #: "double" or "mixed": mixed precision (a paper future-work item,
    #: Sec. VI-A) evaluates the flux kernels in float32 on the gpu backend
    #: while keeping the state and the RK update in float64
    precision: str = "double"
    #: the execution backend launches route through; defaults to a device
    #: backend over this KernelSet's device on gpu, a host backend otherwise
    exec_backend: Optional[ExecutionBackend] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; options {BACKENDS}")
        if self.precision not in ("double", "mixed"):
            raise ValueError("precision must be 'double' or 'mixed'")
        if self.precision == "mixed" and self.backend != "gpu":
            raise ValueError("mixed precision is a GPU-backend experiment")
        if self.backend == "gpu" and self.device is None:
            self.device = GpuDevice()
        if self.exec_backend is None:
            self.exec_backend = (DeviceBackend([self.device])
                                 if self.backend == "gpu" else HostBackend())
        # the translated (cpp/gpu) kernels evaluate the LF split in the
        # re-associated form — the fortran/C++ floating-point divergence
        from dataclasses import replace

        want = "fused" if self.backend == "fortran" else "distributed"
        if self.convective.split_form != want:
            self.convective = replace(self.convective, split_form=want)

    @property
    def on_gpu(self) -> bool:
        return self.backend == "gpu"

    @property
    def nghost(self) -> int:
        ng = self.convective.nghost + 1
        if self.viscous is not None:
            ng = max(ng, self.viscous.nghost)
        return ng

    # -- RHS evaluation --------------------------------------------------
    def rhs(self, u: np.ndarray, metrics: Metrics, ng: int,
            device: Optional[GpuDevice] = None) -> np.ndarray:
        """Full right-hand side over the valid region of one patch.

        The accumulation *order* of direction sweeps differs between the
        fortran and cpp/gpu backends (see module docstring): a deliberate,
        faithful source of floating-point divergence.  ``device`` selects
        the executing GPU (Summit runs one rank per GPU); defaults to the
        KernelSet's own device.
        """
        dev = device if device is not None else self.device
        dim = self.layout.dim
        if self.precision == "mixed":
            # flux kernels evaluate in single precision; the state stays
            # double and the update accumulates in double (the standard
            # mixed-precision recipe the paper lists as future work)
            u = u.astype(np.float32).astype(np.float64)
        if (getattr(self.exec_backend, "fuses_kernels", False)
                and not self.convective.characteristic):
            # the fused target collapses the per-direction sweeps into
            # one wide launch with shared primitives and cached scratch
            out = self._fused_sweep(u, metrics, ng, dev)
        else:
            directions = (range(dim) if self.backend == "fortran"
                          else range(dim - 1, -1, -1))
            out = None
            for d in directions:
                contrib = self._weno_direction(u, metrics, d, ng, dev)
                out = contrib if out is None else out + contrib
        if self.viscous is not None:
            out = out + self._viscous(u, metrics, ng, dev)
        assert out is not None
        if self.precision == "mixed":
            out = out.astype(np.float32).astype(np.float64)
        return out

    def _weno_direction(self, u: np.ndarray, metrics: Metrics, d: int,
                        ng: int, device: Optional[GpuDevice] = None) -> np.ndarray:
        name = DIRECTION_NAMES[d]
        dev = device if device is not None else self.device
        body = lambda: self.convective.divergence(
            self.layout, self.eos, u, metrics, d, ng)
        npts = int(np.prod([s - 2 * ng for s in u.shape[1:]]))
        spec = LaunchSpec(kernel_class="flux", budget=WENO_BUDGET,
                          device=dev, shape=u.shape)
        if self.on_gpu:
            # scratch arrays live in device global memory, allocated from
            # the host before launch (Sec. IV-B)
            scratch = dev.alloc((self.layout.ncons,) + u.shape[1:])
            try:
                return self.exec_backend.parallel_for(name, body, npts, spec)
            finally:
                scratch.free()
        return self.exec_backend.parallel_for(name, body, npts, spec)

    def _fused_sweep(self, u: np.ndarray, metrics: Metrics, ng: int,
                     device: Optional[GpuDevice] = None) -> np.ndarray:
        """One wide launch for all directional sweeps (fused target).

        The launch is named ``WENOxy``/``WENOxyz`` and covers
        ``dim * nvalid`` points, so per-class point and flop totals stay
        comparable with the per-direction launch stream.
        """
        from repro.kernels.fused import fused_sweep

        backend = self.exec_backend
        dim = self.layout.dim
        dev = device if device is not None else self.device
        name = "WENO" + "xyz"[:dim]
        npts = dim * int(np.prod([s - 2 * ng for s in u.shape[1:]]))
        scratch = getattr(backend, "scratch", None)
        if scratch is None:
            from repro.backend import ScratchCache

            scratch = self._local_scratch = getattr(
                self, "_local_scratch", None) or ScratchCache()
        body = lambda: fused_sweep(
            self.layout, self.eos, self.convective, u, metrics, ng,
            scratch, jit=getattr(backend, "jit_enabled", False),
            reverse=(self.backend != "fortran"))
        spec = LaunchSpec(kernel_class="flux", budget=fused_weno_budget(dim),
                          device=dev, shape=u.shape)
        if self.on_gpu:
            dscratch = dev.alloc((self.layout.ncons,) + u.shape[1:])
            try:
                return backend.parallel_for(name, body, npts, spec)
            finally:
                dscratch.free()
        return backend.parallel_for(name, body, npts, spec)

    def _viscous(self, u: np.ndarray, metrics: Metrics, ng: int,
                 device: Optional[GpuDevice] = None) -> np.ndarray:
        assert self.viscous is not None
        dev = device if device is not None else self.device
        npts = int(np.prod([s - 2 * ng for s in u.shape[1:]]))
        return self.exec_backend.parallel_for(
            "Viscous",
            lambda: self.viscous.divergence(self.layout, self.eos, u,
                                            metrics, ng),
            npts, LaunchSpec(kernel_class="flux", budget=VISCOUS_BUDGET,
                             device=dev, shape=u.shape))

    # -- RK update kernel -----------------------------------------------------
    def update(self, u_valid: np.ndarray, du: np.ndarray, rhs: np.ndarray,
               dt: float, stage: int,
               device: Optional[GpuDevice] = None) -> None:
        """Low-storage RK stage over one patch's valid region, in place."""
        dev = device if device is not None else self.device
        npts = int(np.prod(u_valid.shape[1:]))
        self.exec_backend.parallel_for(
            "Update",
            lambda: rk3_stage(u_valid, du, rhs, dt, stage),
            npts, LaunchSpec(kernel_class="update", budget=UPDATE_BUDGET,
                             device=dev, shape=u_valid.shape))

    # -- ComputeDt ----------------------------------------------------------
    def max_rate(self, u: np.ndarray, metrics: Metrics,
                 device: Optional[GpuDevice] = None) -> float:
        """Patch CFL rate, via the backend ReduceData (a recorded device
        reduction on the gpu backend, plain NumPy on the host target)."""
        dev = device if device is not None else self.device
        return local_max_rate(self.layout, self.eos, u, metrics,
                              backend=self.exec_backend, device=dev)

    # -- device residency ----------------------------------------------------
    def register_state(self, nbytes: int,
                       device: Optional[GpuDevice] = None):
        """Account persistent state residency in device memory.

        Returns a handle whose ``free()`` releases the bytes; the caller
        (the CRoCCo driver) registers each patch's storage on the owning
        rank's GPU when a level is created on the gpu backend.
        """
        if not self.on_gpu:
            return None
        return _Residency(device if device is not None else self.device, nbytes)


class _Residency:
    """Persistent device-memory reservation for level state."""

    def __init__(self, device: GpuDevice, nbytes: int) -> None:
        self._device = device
        self._nbytes = nbytes
        device._allocate(nbytes)
        self._freed = False

    def free(self) -> None:
        if not self._freed:
            self._device._release(self._nbytes)
            self._freed = True


def make_backend(
    backend: str,
    layout: StateLayout,
    eos,
    convective: Optional[ConvectiveFlux] = None,
    viscous: Optional[ViscousFlux] = None,
    device: Optional[GpuDevice] = None,
    exec_backend: Optional[ExecutionBackend] = None,
) -> KernelSet:
    """Convenience constructor with default operators."""
    return KernelSet(
        backend=backend,
        layout=layout,
        eos=eos,
        convective=convective if convective is not None else ConvectiveFlux(),
        viscous=viscous,
        device=device,
        exec_backend=exec_backend,
    )
