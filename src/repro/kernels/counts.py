"""Analytic flop / memory-traffic estimates for the CRoCCo kernels.

These per-grid-point budgets drive the simulated device's launch records
and, downstream, the hierarchical roofline of Fig. 4.  They are order-of-
magnitude counts for the 5-component, curvilinear, double-precision
kernels:

- **WENO** (per direction): primitive recovery, metric-weighted flux
  assembly, Lax-Friedrichs splitting, and 4-candidate reconstruction of
  both split parts for 5 components — roughly 600 flops/point.  DRAM
  traffic is amplified well beyond the minimal state size because the GPU
  port stages intermediate results in *global-memory scratch arrays*
  (Sec. IV-B: one-/two-dimensional locals were replaced by full 3D arrays
  written by one ``ParallelFor`` and re-read by the next), so each point
  moves state + metrics + several scratch fields ~ 400 B.
- **Viscous**: two derivative passes over velocity/temperature plus stress
  assembly — ~450 flops and ~300 B per point.
- **Update** (RK stage): a saxpy over 5 components — trivially
  bandwidth-bound.
- register pressure: the paper reports theoretical occupancy limited to
  12.5% by "very high register usage"; 255 registers/thread reproduces
  exactly that bound on a V100 (65536 regs / 255 -> 256 threads of 2048).
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as _dc_replace


@dataclass(frozen=True)
class KernelBudget:
    """Per-point cost estimates for one kernel."""

    name: str
    flops_per_point: float
    dram_bytes_per_point: float
    l2_amplification: float
    l1_amplification: float
    registers_per_thread: int


WENO_BUDGET = KernelBudget(
    name="WENO",
    flops_per_point=600.0,
    dram_bytes_per_point=400.0,
    l2_amplification=1.8,
    l1_amplification=4.5,
    registers_per_thread=255,
)

VISCOUS_BUDGET = KernelBudget(
    name="Viscous",
    flops_per_point=450.0,
    dram_bytes_per_point=300.0,
    l2_amplification=1.8,
    l1_amplification=4.0,
    registers_per_thread=255,
)

UPDATE_BUDGET = KernelBudget(
    name="Update",
    flops_per_point=20.0,
    dram_bytes_per_point=120.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=64,
)

#: the fused all-directions WENO launch (``WENOxy``/``WENOxyz`` on the
#: ``fused`` execution target).  npoints for the fused launch is
#: dim * nvalid, so flops/point stays 600 (same arithmetic as the
#: per-direction sweeps) while DRAM bytes/point drops: primitives are
#: computed once for all directions and intermediates live in reused
#: scratch instead of round-tripping global-memory staging arrays —
#: the Sec. IV-B scratch traffic the fusion removes.
FUSED_WENO_BUDGET = KernelBudget(
    name="WENOxyz",
    flops_per_point=600.0,
    dram_bytes_per_point=280.0,
    l2_amplification=2.2,
    l1_amplification=5.0,
    registers_per_thread=255,
)

COMPUTEDT_BUDGET = KernelBudget(
    name="ComputeDt",
    flops_per_point=40.0,
    dram_bytes_per_point=72.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=64,
)

# -- AMR-substrate budgets ---------------------------------------------------
# The FillPatch/regrid machinery is copy-dominated: a couple of flops per
# point (index arithmetic is free on the roofline; the nonzero count keeps
# the arithmetic-intensity model well-defined) moving one or two 8-byte
# components each way.  Interpolation does real arithmetic — 8 corner
# weights x 5 components for trilinear, more for WENO — so it gets a
# compute budget between the copies and the flux kernels.

FILLBOUNDARY_BUDGET = KernelBudget(
    name="FillBoundary",
    flops_per_point=2.0,
    dram_bytes_per_point=16.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=32,
)

PARALLELCOPY_BUDGET = KernelBudget(
    name="ParallelCopy",
    flops_per_point=2.0,
    dram_bytes_per_point=16.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=32,
)

INTERP_BUDGET = KernelBudget(
    name="Interp",
    flops_per_point=60.0,
    dram_bytes_per_point=96.0,
    l2_amplification=1.2,
    l1_amplification=1.5,
    registers_per_thread=128,
)

AVERAGEDOWN_BUDGET = KernelBudget(
    name="AverageDown",
    flops_per_point=10.0,
    dram_bytes_per_point=72.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=64,
)

TAGGING_BUDGET = KernelBudget(
    name="Tagging",
    flops_per_point=12.0,
    dram_bytes_per_point=24.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=64,
)

BCFILL_BUDGET = KernelBudget(
    name="BCFill",
    flops_per_point=4.0,
    dram_bytes_per_point=16.0,
    l2_amplification=1.0,
    l1_amplification=1.0,
    registers_per_thread=32,
)

BUDGETS = {
    b.name: b for b in (
        WENO_BUDGET, VISCOUS_BUDGET, UPDATE_BUDGET, COMPUTEDT_BUDGET,
        FUSED_WENO_BUDGET,
        _dc_replace(FUSED_WENO_BUDGET, name="WENOxy"),
        FILLBOUNDARY_BUDGET, PARALLELCOPY_BUDGET, INTERP_BUDGET,
        AVERAGEDOWN_BUDGET, TAGGING_BUDGET, BCFILL_BUDGET,
    )
}


def fused_weno_budget(dim: int) -> KernelBudget:
    """Budget for the fused launch covering all ``dim`` sweeps."""
    if dim >= 2:
        return BUDGETS["WENO" + "xyz"[:dim]]
    return WENO_BUDGET  # 1D: nothing to fuse across directions

#: launch-name prefix -> budget, for the families of labeled launches the
#: execution backend emits (WENOx/WENOy/WENOz, FB_pack/FB_unpack, ...)
_PREFIX_BUDGETS = (
    ("WENO", WENO_BUDGET),
    ("FB_", FILLBOUNDARY_BUDGET),
    ("PC_", PARALLELCOPY_BUDGET),
    ("Interp", INTERP_BUDGET),
    ("Tag_", TAGGING_BUDGET),
    ("BC_", BCFILL_BUDGET),
)


def budget_for_kernel(name: str) -> KernelBudget:
    """Resolve a launch name to its cost budget.

    Exact matches win; otherwise the launch-family prefix decides
    (``WENOx`` -> WENO, ``FB_pack`` -> FillBoundary, ``Interp_weno`` ->
    Interp, ...).  Unknown kernels are priced like the bandwidth-bound
    Update saxpy, the most neutral assumption.
    """
    budget = BUDGETS.get(name)
    if budget is not None:
        return budget
    for prefix, b in _PREFIX_BUDGETS:
        if name.startswith(prefix):
            return b
    return UPDATE_BUDGET
