"""The ``fused`` execution target: the first backend that *optimizes*.

The ``host`` and ``device`` targets run the same arithmetic — one
accounts, one does not.  This target changes what actually executes,
reproducing the three performance moves real GPU ports make (STREAmS-2's
"fewer, wider launches"; the paper's Sec. IV-B scratch-array story):

1. **Kernel fusion** — kernels that advertise fusion support (the
   :class:`~repro.kernels.api.KernelSet` RK right-hand side) collapse
   the per-direction WENO sweeps (``WENOx``/``WENOy``/``WENOz``) into a
   single wide launch that computes the shared primitive variables once
   and sweeps all directions from them
   (:func:`repro.kernels.fused.fused_sweep`).
2. **Scratch caching** — reconstruction scratch arrays are served from a
   :class:`ScratchCache` keyed by (role, box shape, dtype) with hit/miss
   counters, instead of being reallocated on every launch.  AMR grids
   repeat a small set of box shapes (blocking_factor/max_grid_size), so
   the steady-state hit rate is ~100%.
3. **Optional JIT** — when numba is importable (a *soft* dependency;
   nothing here imports it at module scope), the hottest kernel — the
   4-candidate WENO combination — is compiled on first use.  Absent
   numba, the pure-NumPy fused path runs; behavior is identical either
   way up to floating-point re-association.

Accounting matches the ``device`` target (launch records on simulated
GPUs, per-class counters, pool-worker merging), so the ``device.class.*``
gauges, the run report and the roofline all show the fused launches —
fewer and wider than the host/device launch stream.

Accuracy contract: fused results drift from the ``host`` target by no
more than 1e-7 relative L2 on the DMR deck — the same criterion the
paper applies to its Fortran -> C++ port — asserted by
``tests/backend/test_fused.py`` and ``benchmarks/bench_fused_kernels.py``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.launch import DeviceBackend, register_target

#: REPRO_FUSED_JIT values: "auto" (use numba when importable), "on"
#: (require numba; fall back with a one-time warning if missing), "off"
JIT_MODES = ("auto", "on", "off")


def numba_available() -> bool:
    """True when the optional numba dependency is importable."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


class ScratchCache:
    """Shape-keyed scratch-array allocator with hit counters.

    ``get(role, shape)`` returns an *uninitialized* float64 array cached
    under ``(role, shape, dtype)``; callers own the full overwrite (the
    fused kernels write every element through ``out=`` ops before
    reading).  One cache lives per backend instance, so arrays are
    reused across launches, RK stages and steps for every box of the
    same shape — the allocation pattern the paper's port achieves by
    hoisting scratch allocation out of the kernels (Sec. IV-B).
    """

    def __init__(self) -> None:
        self._store: Dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get(self, role: str, shape: Tuple[int, ...],
            dtype=np.float64) -> np.ndarray:
        key = (role, tuple(int(s) for s in shape), np.dtype(dtype).str)
        arr = self._store.get(key)
        if arr is None:
            self.misses += 1
            arr = np.empty(key[1], dtype=dtype)
            self._store[key] = arr
        else:
            self.hits += 1
        return arr

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._store.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {"entries": len(self._store), "bytes": self.nbytes,
                "hits": self.hits, "misses": self.misses,
                "hit_rate": self.hit_rate}

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


class FusedBackend(DeviceBackend):
    """Fused optimizing target: device-style accounting, optimized launches.

    Inherits the full accounting surface of :class:`DeviceBackend`
    (launch records, per-class counters, worker merging) so recorded
    runs and reports work unchanged; adds the :class:`ScratchCache`, the
    fusion capability flag the kernel layer keys on, and the numba JIT
    policy (``jit`` argument or the ``REPRO_FUSED_JIT`` env var).
    """

    target = "fused"
    fuses_kernels = True

    def __init__(self, devices: Optional[List[object]] = None,
                 jit: Optional[str] = None) -> None:
        super().__init__(devices)
        self.scratch = ScratchCache()
        mode = (jit or os.environ.get("REPRO_FUSED_JIT", "auto")).lower()
        if mode not in JIT_MODES:
            from repro.core.errors import ConfigError

            raise ConfigError(
                f"unknown fused JIT mode {mode!r} (from REPRO_FUSED_JIT); "
                f"options {JIT_MODES}")
        self.jit_mode = mode
        self.jit_enabled = mode != "off" and numba_available()
        if mode == "on" and not self.jit_enabled:
            import warnings

            warnings.warn(
                "REPRO_FUSED_JIT=on but numba is not importable; "
                "falling back to the pure-NumPy fused path",
                RuntimeWarning, stacklevel=2)
        #: launches per LaunchSpec.shape hint — which box shapes drive
        #: the scratch cache (surfaced in stats() and the run report)
        self.launch_shapes: Dict[Tuple[int, ...], int] = {}

    def _launch(self, name, fn, npoints, spec):
        if spec.shape is not None:
            key = tuple(int(s) for s in spec.shape)
            self.launch_shapes[key] = self.launch_shapes.get(key, 0) + 1
        return super()._launch(name, fn, npoints, spec)

    def scratch_stats(self) -> Dict[str, float]:
        """Cache counters plus the JIT state, for gauges and reports."""
        stats = self.scratch.stats()
        stats["jit"] = 1.0 if self.jit_enabled else 0.0
        stats["shapes"] = len(self.launch_shapes)
        return stats


register_target("fused", lambda devices=None: FusedBackend(devices))
