"""Execution backends: the ParallelFor/ReduceData launch seam.

CRoCCo 2.0's port puts *every* kernel — flux sweeps, FillBoundary
pack/unpack, ParallelCopy, interpolation, AverageDown, tagging, the
ComputeDt reduction — behind the AMReX GPU API (``launch`` /
``ParallelFor`` / ``ReduceData``), which is exactly what makes the
device-side accounting of the paper's evaluation complete.  This module
hoists that seam out of :mod:`repro.kernels.device` into a shared layer
both the kernel backends and the AMR substrate launch through.

**Targets are pluggable.**  A backend target registers itself with
:func:`register_target`; :func:`make_exec_backend` constructs backends
*only* through that registry, and :func:`available_targets` (and the
derived module attribute ``TARGETS``) enumerate what is installed:

``host``
    Plain NumPy: :meth:`~ExecutionBackend.parallel_for` runs the body
    directly and :meth:`~ExecutionBackend.reduce_data` is a NumPy
    reduction.  No accounting, no records — the v1.x CPU path.

``device``
    The same arithmetic executed as recorded launches on simulated
    :class:`~repro.kernels.device.GpuDevice` instances (arena accounting,
    launch records, flop/byte budgets).  Because the body is identical,
    host and device targets are *bitwise* identical; only the accounting
    differs — the v2.0/2.1 path.

``fused``
    The first *optimizing* target (:mod:`repro.backend.fused`): kernels
    that advertise fusion collapse the per-direction WENO sweeps into
    one wide launch, reconstruction scratch is reused from a
    shape-keyed cache, and the hottest kernels are optionally JITed via
    numba (soft dependency).  Accounting matches the device target;
    results drift from host by <= 1e-7 relative L2 (the paper's own
    Fortran -> C++ criterion), not bitwise.

**The launch contract is a** :class:`LaunchSpec`.  Every target accepts
``parallel_for(name, fn, npoints, spec)`` / ``reduce_data(name, values,
op, spec)`` uniformly; the historical loose keywords (``kernel_class=``,
``budget=``, ``rank=``, ``device=``) are still accepted for one release
but emit a :class:`DeprecationWarning`.

A module-level current backend (default: host) lets deep call sites —
the AMR substrate has no reference to the driver — resolve their target
with :func:`current_backend`; the driver activates its configured
backend around each step with :func:`use_backend` (the LaunchContext).
Per-kernel-class launch counters support merging accounting from pool
workers back into the driver (records themselves stay worker-local).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: kernel classes used to group launch accounting
KERNEL_CLASSES = ("flux", "update", "fillpatch", "interp", "averagedown",
                  "tagging", "reduction")

_REDUCE_OPS = {"min": np.min, "max": np.max, "sum": np.sum}

#: counter fields tracked per kernel class
COUNTER_FIELDS = ("launches", "points", "flops", "dram_bytes")


# -- the launch contract -----------------------------------------------------

@dataclass(frozen=True)
class LaunchSpec:
    """The one documented keyword contract of ``parallel_for``/``reduce_data``.

    Every registered target accepts a LaunchSpec uniformly (targets that
    do not account simply ignore the accounting fields), replacing the
    per-target keyword lists that used to drift apart:

    ``kernel_class``
        Coarse accounting group (one of :data:`KERNEL_CLASSES`).
    ``budget``
        A :class:`~repro.kernels.counts.KernelBudget` pricing the launch
        (flops/bytes per point); accounting targets resolve ``None`` from
        the launch name via
        :func:`~repro.kernels.counts.budget_for_kernel`.
    ``rank``
        The simulated MPI rank issuing the launch; accounting targets
        map it to that rank's device when ``device`` is not given.
    ``device``
        Explicit :class:`~repro.kernels.device.GpuDevice` override.
    ``shape``
        Array-shape hint for scratch caching: optimizing targets key
        their reconstruction-scratch allocator by box shape, and the
        hint lets them attribute cache traffic per launch.
    """

    kernel_class: str = "flux"
    budget: Optional[object] = None
    rank: int = 0
    device: Optional[object] = None
    shape: Optional[Tuple[int, ...]] = None


#: loose keywords accepted (deprecated) in place of a LaunchSpec
_LEGACY_KEYS = ("kernel_class", "budget", "rank", "device", "shape")


def _normalize_spec(spec: Optional[LaunchSpec], kwargs: dict,
                    default_class: str) -> LaunchSpec:
    """Fold deprecated loose keywords into a LaunchSpec (warning once per
    call site); bare calls get a default spec."""
    if kwargs:
        unknown = set(kwargs) - set(_LEGACY_KEYS)
        if unknown:
            raise TypeError(
                f"unknown launch keyword(s) {sorted(unknown)}; the "
                f"LaunchSpec fields are {_LEGACY_KEYS}")
        warnings.warn(
            "loose parallel_for/reduce_data keywords (kernel_class=, "
            "budget=, rank=, device=) are deprecated; pass a "
            "LaunchSpec(...) as the `spec` argument instead",
            DeprecationWarning, stacklevel=4)
        if spec is None:
            spec = LaunchSpec(kernel_class=default_class)
        spec = replace(spec, **kwargs)
    elif spec is None:
        spec = LaunchSpec(kernel_class=default_class)
    return spec


@dataclass
class LaunchCounter:
    """Cumulative launch accounting for one kernel class."""

    launches: int = 0
    points: int = 0
    flops: int = 0
    dram_bytes: int = 0

    def add_record(self, rec) -> None:
        self.launches += 1
        self.points += rec.npoints
        self.flops += rec.flops
        self.dram_bytes += rec.dram_bytes

    def add_dict(self, d: Dict[str, int]) -> None:
        self.launches += int(d.get("launches", 0))
        self.points += int(d.get("points", 0))
        self.flops += int(d.get("flops", 0))
        self.dram_bytes += int(d.get("dram_bytes", 0))

    def as_dict(self) -> Dict[str, int]:
        return {"launches": self.launches, "points": self.points,
                "flops": self.flops, "dram_bytes": self.dram_bytes}


def counters_delta(after: Dict[str, Dict[str, int]],
                   before: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Per-class difference of two counter snapshots (new work only)."""
    delta: Dict[str, Dict[str, int]] = {}
    for cls, a in after.items():
        b = before.get(cls, {})
        d = {f: int(a.get(f, 0)) - int(b.get(f, 0)) for f in COUNTER_FIELDS}
        if any(d.values()):
            delta[cls] = d
    return delta


class ExecutionBackend:
    """Launch primitives shared by the kernel backends and the AMR substrate.

    ``parallel_for(name, fn, npoints, spec)`` runs ``fn`` as one logical
    device launch over ``npoints`` grid points; ``reduce_data`` is the
    ``amrex::ReduceData`` analogue.  The public methods normalize the
    keyword contract (LaunchSpec vs. deprecated loose kwargs) once, here;
    targets implement only :meth:`_launch` / :meth:`_reduce` and decide
    whether anything is recorded.
    """

    target = "abstract"

    #: targets that fuse kernel launches set this; :class:`KernelSet`
    #: checks it to route the RK right-hand side through the fused sweep
    fuses_kernels = False

    def parallel_for(self, name: str, fn: Callable, npoints: int,
                     spec: Optional[LaunchSpec] = None, **kwargs):
        return self._launch(name, fn, npoints,
                            _normalize_spec(spec, kwargs, "flux"))

    def reduce_data(self, name: str, values, op: str = "min",
                    spec: Optional[LaunchSpec] = None, **kwargs) -> float:
        return self._reduce(name, values, op,
                            _normalize_spec(spec, kwargs, "reduction"))

    # -- target hooks ------------------------------------------------------
    def _launch(self, name: str, fn: Callable, npoints: int,
                spec: LaunchSpec):
        raise NotImplementedError

    def _reduce(self, name: str, values, op: str, spec: LaunchSpec) -> float:
        raise NotImplementedError

    # -- accounting (accounting targets only; host returns empties) --------
    @property
    def counters(self) -> Dict[str, LaunchCounter]:
        return {}

    def counters_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {cls: c.as_dict() for cls, c in self.counters.items()}

    def merge_worker_counters(self, delta: Dict[str, Dict[str, int]]) -> None:
        """Fold per-class counters from pool workers into this backend."""

    def class_totals(self) -> Dict[str, Dict[str, int]]:
        """Driver-local plus merged worker accounting, by kernel class."""
        return {}

    @property
    def worker_launches(self) -> int:
        return 0


class HostBackend(ExecutionBackend):
    """Plain NumPy execution: no device, no records, no accounting."""

    target = "host"

    def _launch(self, name, fn, npoints, spec):
        return fn()

    def _reduce(self, name, values, op, spec) -> float:
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduction op {op!r}")
        return float(_REDUCE_OPS[op](values))


class DeviceBackend(ExecutionBackend):
    """Recorded execution on simulated GPUs, one device per rank.

    An explicit ``spec.device`` wins; otherwise ``spec.rank`` selects
    from the backend's device list (Summit: one V100 per MPI rank).
    Every launch also feeds a per-kernel-class :class:`LaunchCounter`,
    and counters merged from pool workers are kept separately
    (``worker_counters``) so driver-recorded work is never
    double-counted.
    """

    target = "device"

    def __init__(self, devices: Optional[List[object]] = None) -> None:
        if not devices:
            from repro.kernels.device import GpuDevice

            devices = [GpuDevice()]
        self.devices = list(devices)
        self._counters: Dict[str, LaunchCounter] = {}
        self.worker_counters: Dict[str, LaunchCounter] = {}

    @property
    def counters(self) -> Dict[str, LaunchCounter]:
        return self._counters

    def device_for(self, rank: int):
        return self.devices[rank % len(self.devices)]

    def _budget(self, name: str, budget):
        if budget is not None:
            return budget
        from repro.kernels.counts import budget_for_kernel

        return budget_for_kernel(name)

    def _count(self, kernel_class: str, rec) -> None:
        self._counters.setdefault(kernel_class, LaunchCounter()).add_record(rec)

    def _launch(self, name, fn, npoints, spec):
        dev = spec.device if spec.device is not None else self.device_for(spec.rank)
        b = self._budget(name, spec.budget)
        result = dev.launch(
            name, fn, npoints,
            flops_per_point=b.flops_per_point,
            dram_bytes_per_point=b.dram_bytes_per_point,
            l2_amplification=b.l2_amplification,
            l1_amplification=b.l1_amplification,
            kernel_class=spec.kernel_class,
        )
        self._count(spec.kernel_class, dev.launches[-1])
        return result

    def _reduce(self, name, values, op, spec) -> float:
        dev = spec.device if spec.device is not None else self.device_for(spec.rank)
        result = dev.reduce(name, values, op=op, kernel_class=spec.kernel_class)
        self._count(spec.kernel_class, dev.launches[-1])
        return result

    # -- worker-counter merging --------------------------------------------
    def merge_worker_counters(self, delta: Dict[str, Dict[str, int]]) -> None:
        for cls, d in delta.items():
            self.worker_counters.setdefault(cls, LaunchCounter()).add_dict(d)

    def class_totals(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for source in (self._counters, self.worker_counters):
            for cls, c in source.items():
                tot = out.setdefault(cls, {f: 0 for f in COUNTER_FIELDS})
                for field_, value in c.as_dict().items():
                    tot[field_] += value
        return out

    @property
    def worker_launches(self) -> int:
        return sum(c.launches for c in self.worker_counters.values())


# -- target registry ---------------------------------------------------------

class UnknownTargetError(ValueError):
    """An execution-target name with no registered factory."""


#: name -> factory(devices=None) -> ExecutionBackend, in registration order
_TARGET_FACTORIES: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_target(name: str, factory: Callable[..., ExecutionBackend], *,
                    override: bool = False) -> None:
    """Register an execution-target factory under ``name``.

    ``factory(devices=None)`` must return a fresh
    :class:`ExecutionBackend`.  Registering an existing name raises
    unless ``override=True`` (used by tests and downstream forks to swap
    a target implementation in place).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"target name must be a non-empty string, got {name!r}")
    if name == "auto":
        raise ValueError("'auto' is reserved for version-default resolution")
    if name in _TARGET_FACTORIES and not override:
        raise ValueError(
            f"target {name!r} is already registered "
            f"(pass override=True to replace it)")
    _TARGET_FACTORIES[name] = factory


def unregister_target(name: str) -> None:
    """Remove a registered target (primarily for test isolation)."""
    _TARGET_FACTORIES.pop(name, None)


def available_targets() -> Tuple[str, ...]:
    """Registered target names, in registration order."""
    return tuple(_TARGET_FACTORIES)


def make_exec_backend(target: str,
                      devices: Optional[List[object]] = None) -> ExecutionBackend:
    """Build a backend by target name (``backend.target`` / REPRO_BACKEND).

    Construction goes through the registry *only*: every target —
    built-in or downstream — plugs in via :func:`register_target`.
    """
    factory = _TARGET_FACTORIES.get(target)
    if factory is None:
        raise UnknownTargetError(
            f"unknown backend target {target!r}; registered targets: "
            f"{', '.join(available_targets())}")
    return factory(devices=devices)


def resolve_target(value: Optional[str], *,
                   version_default: Optional[str] = None,
                   source: str = "backend.target") -> str:
    """The one validation path for every way a target can be configured.

    ``backend.target`` deck keys, the ``REPRO_BACKEND`` env var and the
    ``--backend`` CLI flag all funnel through here; an unknown name
    raises :class:`repro.core.errors.ConfigError` naming the offending
    ``source`` and listing the registered targets, which the CLI and the
    serve layer report as a one-line error with exit status 2.

    ``auto`` resolves to ``version_default`` when given (the version
    config's preferred target), and passes through unchanged otherwise
    so callers without a version in hand can defer resolution.
    """
    target = (value or "auto").strip() if isinstance(value, str) or value is None \
        else value
    if target == "auto":
        if version_default is None:
            return "auto"
        target = version_default
    if target not in _TARGET_FACTORIES:
        from repro.core.errors import ConfigError

        raise ConfigError(
            f"unknown backend target {target!r} (from {source}); "
            f"registered targets: {', '.join(available_targets())}, "
            f"plus 'auto'")
    return target


# the built-in accounting targets; the optimizing `fused` target registers
# itself from repro.backend.fused (imported by the package __init__)
register_target("host", lambda devices=None: HostBackend())
register_target("device", lambda devices=None: DeviceBackend(devices))


def __getattr__(name: str):
    # TARGETS is *derived* from the registry (not a duplicated literal):
    # late-registered targets show up, and `from ... import TARGETS`
    # re-executed inside functions always sees the current set
    if name == "TARGETS":
        return available_targets()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# -- current-backend context -------------------------------------------------

_DEFAULT = HostBackend()
_current: ExecutionBackend = _DEFAULT


def current_backend() -> ExecutionBackend:
    """The active backend (host unless a driver activated another)."""
    return _current


def set_backend(backend: Optional[ExecutionBackend]) -> ExecutionBackend:
    """Install ``backend`` (None restores the host default); returns the
    previously active backend."""
    global _current
    previous = _current
    _current = backend if backend is not None else _DEFAULT
    return previous


@contextmanager
def use_backend(backend: ExecutionBackend):
    """LaunchContext: activate ``backend`` for the dynamic extent of a block.

    Re-entrant: the previously active backend is restored on exit, so
    nested drivers (e.g. a validation run inside a recorded run) compose.
    """
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


def parallel_for(name: str, fn: Callable, npoints: int,
                 spec: Optional[LaunchSpec] = None, **kwargs):
    """Launch ``fn`` through the currently active backend."""
    return current_backend().parallel_for(name, fn, npoints, spec, **kwargs)


def reduce_data(name: str, values, op: str = "min",
                spec: Optional[LaunchSpec] = None, **kwargs) -> float:
    """Reduce ``values`` through the currently active backend."""
    return current_backend().reduce_data(name, values, op, spec, **kwargs)
