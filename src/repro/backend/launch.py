"""Execution backends: the ParallelFor/ReduceData launch seam.

CRoCCo 2.0's port puts *every* kernel — flux sweeps, FillBoundary
pack/unpack, ParallelCopy, interpolation, AverageDown, tagging, the
ComputeDt reduction — behind the AMReX GPU API (``launch`` /
``ParallelFor`` / ``ReduceData``), which is exactly what makes the
device-side accounting of the paper's evaluation complete.  This module
hoists that seam out of :mod:`repro.kernels.device` into a shared layer
both the kernel backends and the AMR substrate launch through:

``HostBackend``
    Plain NumPy: :meth:`~ExecutionBackend.parallel_for` runs the body
    directly and :meth:`~ExecutionBackend.reduce_data` is a NumPy
    reduction.  No accounting, no records — the v1.x CPU path.

``DeviceBackend``
    The same arithmetic executed as recorded launches on simulated
    :class:`~repro.kernels.device.GpuDevice` instances (arena accounting,
    launch records, flop/byte budgets).  Because the body is identical,
    host and device targets are *bitwise* identical; only the accounting
    differs — the v2.0/2.1 path.

A module-level current backend (default: host) lets deep call sites —
the AMR substrate has no reference to the driver — resolve their target
with :func:`current_backend`; the driver activates its configured
backend around each step with :func:`use_backend` (the LaunchContext).
Per-kernel-class launch counters support merging accounting from pool
workers back into the driver (records themselves stay worker-local).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

#: recognized execution targets (``backend.target`` deck key values)
TARGETS = ("host", "device")

#: kernel classes used to group launch accounting
KERNEL_CLASSES = ("flux", "update", "fillpatch", "interp", "averagedown",
                  "tagging", "reduction")

_REDUCE_OPS = {"min": np.min, "max": np.max, "sum": np.sum}

#: counter fields tracked per kernel class
COUNTER_FIELDS = ("launches", "points", "flops", "dram_bytes")


@dataclass
class LaunchCounter:
    """Cumulative launch accounting for one kernel class."""

    launches: int = 0
    points: int = 0
    flops: int = 0
    dram_bytes: int = 0

    def add_record(self, rec) -> None:
        self.launches += 1
        self.points += rec.npoints
        self.flops += rec.flops
        self.dram_bytes += rec.dram_bytes

    def add_dict(self, d: Dict[str, int]) -> None:
        self.launches += int(d.get("launches", 0))
        self.points += int(d.get("points", 0))
        self.flops += int(d.get("flops", 0))
        self.dram_bytes += int(d.get("dram_bytes", 0))

    def as_dict(self) -> Dict[str, int]:
        return {"launches": self.launches, "points": self.points,
                "flops": self.flops, "dram_bytes": self.dram_bytes}


def counters_delta(after: Dict[str, Dict[str, int]],
                   before: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Per-class difference of two counter snapshots (new work only)."""
    delta: Dict[str, Dict[str, int]] = {}
    for cls, a in after.items():
        b = before.get(cls, {})
        d = {f: int(a.get(f, 0)) - int(b.get(f, 0)) for f in COUNTER_FIELDS}
        if any(d.values()):
            delta[cls] = d
    return delta


class ExecutionBackend:
    """Launch primitives shared by the kernel backends and the AMR substrate.

    ``parallel_for(name, fn, npoints, ...)`` runs ``fn`` as one logical
    device launch over ``npoints`` grid points; ``reduce_data`` is the
    ``amrex::ReduceData`` analogue.  Subclasses decide whether anything
    is recorded.
    """

    target = "abstract"

    def parallel_for(self, name: str, fn: Callable, npoints: int, *,
                     kernel_class: str = "flux", budget=None,
                     rank: int = 0, device=None):
        raise NotImplementedError

    def reduce_data(self, name: str, values, op: str = "min", *,
                    kernel_class: str = "reduction", rank: int = 0,
                    device=None) -> float:
        raise NotImplementedError

    # -- accounting (device target only; host returns empties) -------------
    @property
    def counters(self) -> Dict[str, LaunchCounter]:
        return {}

    def counters_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {cls: c.as_dict() for cls, c in self.counters.items()}

    def merge_worker_counters(self, delta: Dict[str, Dict[str, int]]) -> None:
        """Fold per-class counters from pool workers into this backend."""

    def class_totals(self) -> Dict[str, Dict[str, int]]:
        """Driver-local plus merged worker accounting, by kernel class."""
        return {}

    @property
    def worker_launches(self) -> int:
        return 0


class HostBackend(ExecutionBackend):
    """Plain NumPy execution: no device, no records, no accounting."""

    target = "host"

    def parallel_for(self, name, fn, npoints, *, kernel_class="flux",
                     budget=None, rank=0, device=None):
        return fn()

    def reduce_data(self, name, values, op="min", *,
                    kernel_class="reduction", rank=0, device=None) -> float:
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduction op {op!r}")
        return float(_REDUCE_OPS[op](values))


class DeviceBackend(ExecutionBackend):
    """Recorded execution on simulated GPUs, one device per rank.

    An explicit ``device=`` wins; otherwise ``rank`` selects from the
    backend's device list (Summit: one V100 per MPI rank).  Every launch
    also feeds a per-kernel-class :class:`LaunchCounter`, and counters
    merged from pool workers are kept separately (``worker_counters``) so
    driver-recorded work is never double-counted.
    """

    target = "device"

    def __init__(self, devices: Optional[List[object]] = None) -> None:
        if not devices:
            from repro.kernels.device import GpuDevice

            devices = [GpuDevice()]
        self.devices = list(devices)
        self._counters: Dict[str, LaunchCounter] = {}
        self.worker_counters: Dict[str, LaunchCounter] = {}

    @property
    def counters(self) -> Dict[str, LaunchCounter]:
        return self._counters

    def device_for(self, rank: int):
        return self.devices[rank % len(self.devices)]

    def _budget(self, name: str, budget):
        if budget is not None:
            return budget
        from repro.kernels.counts import budget_for_kernel

        return budget_for_kernel(name)

    def _count(self, kernel_class: str, rec) -> None:
        self._counters.setdefault(kernel_class, LaunchCounter()).add_record(rec)

    def parallel_for(self, name, fn, npoints, *, kernel_class="flux",
                     budget=None, rank=0, device=None):
        dev = device if device is not None else self.device_for(rank)
        b = self._budget(name, budget)
        result = dev.launch(
            name, fn, npoints,
            flops_per_point=b.flops_per_point,
            dram_bytes_per_point=b.dram_bytes_per_point,
            l2_amplification=b.l2_amplification,
            l1_amplification=b.l1_amplification,
            kernel_class=kernel_class,
        )
        self._count(kernel_class, dev.launches[-1])
        return result

    def reduce_data(self, name, values, op="min", *,
                    kernel_class="reduction", rank=0, device=None) -> float:
        dev = device if device is not None else self.device_for(rank)
        result = dev.reduce(name, values, op=op, kernel_class=kernel_class)
        self._count(kernel_class, dev.launches[-1])
        return result

    # -- worker-counter merging --------------------------------------------
    def merge_worker_counters(self, delta: Dict[str, Dict[str, int]]) -> None:
        for cls, d in delta.items():
            self.worker_counters.setdefault(cls, LaunchCounter()).add_dict(d)

    def class_totals(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for source in (self._counters, self.worker_counters):
            for cls, c in source.items():
                tot = out.setdefault(cls, {f: 0 for f in COUNTER_FIELDS})
                for field, value in c.as_dict().items():
                    tot[field] += value
        return out

    @property
    def worker_launches(self) -> int:
        return sum(c.launches for c in self.worker_counters.values())


def make_exec_backend(target: str,
                      devices: Optional[List[object]] = None) -> ExecutionBackend:
    """Build a backend by target name (``backend.target`` / REPRO_BACKEND)."""
    if target == "host":
        return HostBackend()
    if target == "device":
        return DeviceBackend(devices)
    raise ValueError(f"unknown backend target {target!r}; options {TARGETS}")


# -- current-backend context -------------------------------------------------

_DEFAULT = HostBackend()
_current: ExecutionBackend = _DEFAULT


def current_backend() -> ExecutionBackend:
    """The active backend (host unless a driver activated another)."""
    return _current


def set_backend(backend: Optional[ExecutionBackend]) -> ExecutionBackend:
    """Install ``backend`` (None restores the host default); returns the
    previously active backend."""
    global _current
    previous = _current
    _current = backend if backend is not None else _DEFAULT
    return previous


@contextmanager
def use_backend(backend: ExecutionBackend):
    """LaunchContext: activate ``backend`` for the dynamic extent of a block.

    Re-entrant: the previously active backend is restored on exit, so
    nested drivers (e.g. a validation run inside a recorded run) compose.
    """
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


def parallel_for(name: str, fn: Callable, npoints: int, **kwargs):
    """Launch ``fn`` through the currently active backend."""
    return current_backend().parallel_for(name, fn, npoints, **kwargs)


def reduce_data(name: str, values, op: str = "min", **kwargs) -> float:
    """Reduce ``values`` through the currently active backend."""
    return current_backend().reduce_data(name, values, op, **kwargs)
