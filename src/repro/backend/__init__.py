"""Shared execution-backend layer (ParallelFor/ReduceData/LaunchContext).

Targets plug in through the registry API (:func:`register_target` /
:func:`available_targets`); ``TARGETS`` is derived from the registry,
never duplicated.  See :mod:`repro.backend.launch` for the design notes
and :mod:`repro.backend.fused` for the optimizing target.
"""

from repro.backend.launch import (COUNTER_FIELDS, KERNEL_CLASSES,
                                  DeviceBackend, ExecutionBackend,
                                  HostBackend, LaunchCounter, LaunchSpec,
                                  UnknownTargetError, available_targets,
                                  counters_delta, current_backend,
                                  make_exec_backend, parallel_for,
                                  reduce_data, register_target,
                                  resolve_target, set_backend,
                                  unregister_target, use_backend)

# importing the module registers the `fused` target with the registry
from repro.backend.fused import FusedBackend, ScratchCache  # noqa: E402

#: the LaunchContext primitive is the ``use_backend`` context manager
LaunchContext = use_backend

__all__ = [
    "COUNTER_FIELDS", "KERNEL_CLASSES", "TARGETS", "DeviceBackend",
    "ExecutionBackend", "FusedBackend", "HostBackend", "LaunchContext",
    "LaunchCounter", "LaunchSpec", "ScratchCache", "UnknownTargetError",
    "available_targets", "counters_delta", "current_backend",
    "make_exec_backend", "parallel_for", "reduce_data", "register_target",
    "resolve_target", "set_backend", "unregister_target", "use_backend",
]


def __getattr__(name: str):
    # TARGETS mirrors the registry dynamically (see launch.__getattr__)
    if name == "TARGETS":
        return available_targets()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
