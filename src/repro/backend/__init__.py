"""Shared execution-backend layer (ParallelFor/ReduceData/LaunchContext).

See :mod:`repro.backend.launch` for the design notes.
"""

from repro.backend.launch import (COUNTER_FIELDS, KERNEL_CLASSES, TARGETS,
                                  DeviceBackend, ExecutionBackend,
                                  HostBackend, LaunchCounter, counters_delta,
                                  current_backend, make_exec_backend,
                                  parallel_for, reduce_data, set_backend,
                                  use_backend)

#: the LaunchContext primitive is the ``use_backend`` context manager
LaunchContext = use_backend

__all__ = [
    "COUNTER_FIELDS", "KERNEL_CLASSES", "TARGETS", "DeviceBackend",
    "ExecutionBackend", "HostBackend", "LaunchContext", "LaunchCounter",
    "counters_delta", "current_backend", "make_exec_backend", "parallel_for",
    "reduce_data", "set_backend", "use_backend",
]
