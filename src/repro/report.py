"""``python -m repro.report``: the run-report CLI.

Thin entry point over :mod:`repro.observability.report` so a recorded run
directory (``trace.json`` + ``metrics.jsonl``) can be summarized with::

    python -m repro.report <run_dir>
"""

import sys

from repro.observability.report import main

if __name__ == "__main__":
    sys.exit(main())
