"""CRoCCo v2.0 reproduction.

A pure-Python reproduction of *"Porting a Computational Fluid Dynamics
Code with AMR to Large-scale GPU Platforms"* (Davis, Shafner, Nichols,
Grube, Martin, Bhatele — IPPS 2023): a compressible curvilinear
WENO-SYMBO / RK3 solver on a block-structured AMR substrate
(AMReX-equivalent), with Fortran/C++/GPU kernel backends, a simulated
MPI layer, and Summit machine models that regenerate the paper's
evaluation figures.

Quick start::

    from repro import Crocco, CroccoConfig, SodShockTube

    sim = Crocco(SodShockTube(128), CroccoConfig(version="2.0"))
    sim.initialize()
    sim.run(100)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.cases import DoubleMachReflection, IsentropicVortex, SodShockTube
from repro.core import Crocco, CroccoConfig, VERSIONS, compare_states

__version__ = "2.0.0"

__all__ = [
    "Crocco",
    "CroccoConfig",
    "VERSIONS",
    "compare_states",
    "SodShockTube",
    "IsentropicVortex",
    "DoubleMachReflection",
    "__version__",
]
