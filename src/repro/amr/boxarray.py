"""Collections of boxes covering (part of) a level's domain.

``BoxArray`` mirrors ``amrex::BoxArray``: an ordered list of disjoint
cell-centered boxes at a single refinement level, with fast queries for
"which boxes intersect this region?" backed by a coarse spatial hash so
that intersection tests scale to tens of thousands of boxes (needed for
the metadata-only Summit-scale decompositions in ``repro.perfmodel``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.intvect import IntVect, IntVectLike


class BoxArray:
    """An immutable ordered collection of boxes at one refinement level."""

    def __init__(self, boxes: Iterable[Box]) -> None:
        self._boxes: Tuple[Box, ...] = tuple(boxes)
        if not self._boxes:
            self._dim = 0
        else:
            self._dim = self._boxes[0].dim
            for b in self._boxes:
                if b.dim != self._dim:
                    raise ValueError("all boxes in a BoxArray must share a dimension")
                if b.is_empty():
                    raise ValueError(f"empty box in BoxArray: {b}")
        self._hash: Optional[Dict[Tuple[int, ...], List[int]]] = None
        self._hash_cell: Optional[int] = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_domain(cls, domain: Box, max_grid_size: IntVectLike,
                    blocking_factor: IntVectLike = 1) -> "BoxArray":
        """Decompose a domain box into chunks of at most ``max_grid_size``.

        Every resulting box has sides divisible by ``blocking_factor``
        (provided the domain itself is); this mirrors the AMReX input-deck
        parameters ``amr.max_grid_size`` and ``amr.blocking_factor``.
        """
        bf = IntVect.coerce(blocking_factor, domain.dim)
        ms = IntVect.coerce(max_grid_size, domain.dim)
        for d in range(domain.dim):
            if ms[d] % bf[d] != 0:
                raise ValueError(
                    f"max_grid_size {ms[d]} not divisible by blocking_factor {bf[d]}"
                )
            if domain.size()[d] % bf[d] != 0:
                raise ValueError(
                    f"domain size {domain.size()[d]} not divisible by "
                    f"blocking_factor {bf[d]} in direction {d}"
                )
        # Chop in blocking-factor units so all cuts are aligned.
        coarse = Box(domain.lo.coarsen(bf),
                     (domain.hi + IntVect.unit(domain.dim)).coarsen(bf) - IntVect.unit(domain.dim))
        chunks = coarse.max_size_chop(ms // bf)
        return cls(c.refine(bf) for c in chunks)

    # -- protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __getitem__(self, i: int) -> Box:
        return self._boxes[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxArray):
            return NotImplemented
        return self._boxes == other._boxes

    def __hash__(self) -> int:
        return hash(self._boxes)

    def __repr__(self) -> str:
        return f"BoxArray(n={len(self)}, pts={self.num_pts()})"

    @property
    def dim(self) -> int:
        return self._dim

    def boxes(self) -> Tuple[Box, ...]:
        return self._boxes

    def num_pts(self) -> int:
        """Total number of cells over all boxes."""
        return sum(b.num_pts() for b in self._boxes)

    def minimal_box(self) -> Box:
        """Smallest single box containing every box in the array."""
        if not self._boxes:
            raise ValueError("minimal_box of empty BoxArray")
        lo = self._boxes[0].lo
        hi = self._boxes[0].hi
        for b in self._boxes[1:]:
            lo = lo.min_with(b.lo)
            hi = hi.max_with(b.hi)
        return Box(lo, hi)

    # -- transformations -----------------------------------------------------
    def coarsen(self, ratio: IntVectLike) -> "BoxArray":
        return BoxArray(b.coarsen(ratio) for b in self._boxes)

    def refine(self, ratio: IntVectLike) -> "BoxArray":
        return BoxArray(b.refine(ratio) for b in self._boxes)

    def grow(self, n: IntVectLike) -> "BoxArray":
        return BoxArray(b.grow(n) for b in self._boxes)

    # -- spatial-hash accelerated queries -------------------------------------
    def _build_hash(self) -> None:
        # Bucket size: the largest box side, so each box spans O(2^dim) buckets.
        cell = max(max(b.size()) for b in self._boxes)
        table: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
        for i, b in enumerate(self._boxes):
            lo = tuple(c // cell for c in b.lo)
            hi = tuple(c // cell for c in b.hi)
            ranges = [range(l, h + 1) for l, h in zip(lo, hi)]

            def rec(prefix, rest):
                if not rest:
                    table[tuple(prefix)].append(i)
                    return
                for k in rest[0]:
                    rec(prefix + [k], rest[1:])

            rec([], ranges)
        self._hash = dict(table)
        self._hash_cell = cell

    def intersecting(self, region: Box) -> List[int]:
        """Indices of boxes intersecting ``region`` (sorted, deduplicated)."""
        if not self._boxes:
            return []
        if region.is_empty():
            return []
        if self._hash is None:
            self._build_hash()
        cell = self._hash_cell
        assert cell is not None and self._hash is not None
        lo = tuple(c // cell for c in region.lo)
        hi = tuple(c // cell for c in region.hi)
        cand: set = set()
        ranges = [range(l, h + 1) for l, h in zip(lo, hi)]

        def rec(prefix, rest):
            if not rest:
                cand.update(self._hash.get(tuple(prefix), ()))
                return
            for k in rest[0]:
                rec(prefix + [k], rest[1:])

        rec([], ranges)
        return sorted(i for i in cand if self._boxes[i].intersects(region))

    def intersections(self, region: Box) -> List[Tuple[int, Box]]:
        """(index, overlap box) pairs for all boxes intersecting ``region``."""
        return [(i, self._boxes[i].intersect(region)) for i in self.intersecting(region)]

    def contains(self, region: Box) -> bool:
        """Whether the union of boxes fully covers ``region``."""
        remaining = [region]
        for i in self.intersecting(region):
            nxt: List[Box] = []
            for r in remaining:
                nxt.extend(r.diff(self._boxes[i]))
            remaining = nxt
            if not remaining:
                return True
        return not remaining

    def complement_in(self, region: Box) -> List[Box]:
        """The part of ``region`` not covered by any box, as disjoint boxes."""
        remaining = [region]
        for i in self.intersecting(region):
            nxt: List[Box] = []
            for r in remaining:
                nxt.extend(r.diff(self._boxes[i]))
            remaining = nxt
            if not remaining:
                break
        return remaining

    def is_disjoint(self) -> bool:
        """Whether no two boxes overlap."""
        for i, b in enumerate(self._boxes):
            for j in self.intersecting(b):
                if j != i:
                    return False
        return True

    def centers(self) -> np.ndarray:
        """(n, dim) array of integer box centers (doubled to stay integral)."""
        return np.array(
            [[l + h for l, h in zip(b.lo, b.hi)] for b in self._boxes],
            dtype=np.int64,
        )
