"""ParallelCopy: global redistribution between different box layouts.

``amrex::FabArray::ParallelCopy`` copies overlapping data between two
MultiFabs whose BoxArrays and DistributionMappings may differ entirely.
Unlike FillBoundary's neighbor-only traffic this is *global* communication
— in the paper it is the scaling bottleneck of the custom curvilinear
interpolator (CRoCCo 2.0 vs 2.1), because the coordinates MultiFab must be
copied into a temporary with more ghost cells at every FillPatch.
"""

from __future__ import annotations

from typing import Optional

from repro.amr.multifab import MultiFab
from repro.backend import LaunchSpec, parallel_for


def parallel_copy(
    dst: MultiFab,
    src: MultiFab,
    src_comp: int = 0,
    dst_comp: int = 0,
    ncomp: Optional[int] = None,
    fill_ghosts: bool = False,
) -> None:
    """Copy every overlap of ``src``'s valid regions into ``dst``.

    With ``fill_ghosts`` the destination region includes ghost cells
    (AMReX's ``ParallelCopy`` with ``ng_dst``), which is how the curvilinear
    interpolator obtains coordinates beyond patch edges.
    """
    if dst.dim != src.dim:
        raise ValueError("ParallelCopy dimension mismatch")
    nc = ncomp if ncomp is not None else min(dst.ncomp - dst_comp,
                                             src.ncomp - src_comp)
    if nc <= 0 or src_comp + nc > src.ncomp or dst_comp + nc > dst.ncomp:
        raise ValueError("component range out of bounds in ParallelCopy")
    for i, dfab in dst:
        region = dfab.grown_box() if fill_ghosts else dfab.box
        overlaps = src.ba.intersections(region)
        if not overlaps:
            continue

        def copy(i=i, dfab=dfab, overlaps=overlaps):
            for j, overlap in overlaps:
                nbytes = dfab.copy_from(src.fab(j), overlap, src_comp,
                                        dst_comp, nc)
                dst.comm.send_bytes(src.dm[j], dst.dm[i], nbytes,
                                    "parallelcopy")

        parallel_for("PC_copy", copy,
                     sum(o.num_pts() for _, o in overlaps),
                     LaunchSpec(kernel_class="fillpatch", rank=dst.dm[i]))
