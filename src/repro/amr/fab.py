"""Fortran-array-box: the per-patch data block.

``FArrayBox`` mirrors ``amrex::FArrayBox``: a dense ``(ncomp, nx[, ny[, nz]])``
float64 array covering a valid box plus ``ngrow`` ghost cells on every side.
Views into sub-boxes are returned as NumPy views (no copies), following the
"use views, not copies" idiom for HPC Python.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.amr.box import Box
from repro.amr.intvect import IntVect, IntVectLike


class FArrayBox:
    """Patch data: ncomp components over ``box.grow(ngrow)``."""

    __slots__ = ("box", "ngrow", "ncomp", "data")

    def __init__(self, box: Box, ncomp: int = 1, ngrow: IntVectLike = 0,
                 data: Optional[np.ndarray] = None) -> None:
        if box.is_empty():
            raise ValueError(f"cannot allocate FArrayBox on empty box {box}")
        if ncomp < 1:
            raise ValueError("ncomp must be >= 1")
        self.box = box
        self.ngrow = IntVect.coerce(ngrow, box.dim)
        if self.ngrow.min() < 0:
            raise ValueError("ngrow must be non-negative")
        self.ncomp = ncomp
        shape = (ncomp,) + self.grown_box().shape()
        if data is None:
            self.data = np.zeros(shape, dtype=np.float64)
        else:
            if data.shape != shape:
                raise ValueError(f"data shape {data.shape} != expected {shape}")
            self.data = np.ascontiguousarray(data, dtype=np.float64)

    def grown_box(self) -> Box:
        """The box including ghost cells — the region the array covers."""
        return self.box.grow(self.ngrow)

    @property
    def dim(self) -> int:
        return self.box.dim

    def nbytes(self) -> int:
        return self.data.nbytes

    # -- views -----------------------------------------------------------
    def view(self, region: Optional[Box] = None, comp: Optional[slice] = None) -> np.ndarray:
        """NumPy view of ``region`` (default: the valid box) for components ``comp``.

        ``region`` must lie within the grown box.
        """
        r = region if region is not None else self.box
        gb = self.grown_box()
        if not gb.contains(r):
            raise ValueError(f"region {r} not contained in grown box {gb}")
        sl = r.slices(relative_to=gb)
        c = comp if comp is not None else slice(None)
        return self.data[(c,) + sl]

    def valid(self, comp: Optional[slice] = None) -> np.ndarray:
        """View of the valid (non-ghost) region."""
        return self.view(self.box, comp)

    def whole(self) -> np.ndarray:
        """The full array including ghosts."""
        return self.data

    # -- mutation -----------------------------------------------------------
    def set_val(self, value: float, region: Optional[Box] = None,
                comp: Optional[int] = None) -> None:
        """Fill a region (default: everything including ghosts) with ``value``."""
        if region is None and comp is None:
            self.data.fill(value)
            return
        r = region if region is not None else self.grown_box()
        c = slice(comp, comp + 1) if comp is not None else slice(None)
        self.view(r, c)[...] = value

    def copy_from(self, other: "FArrayBox", region: Box,
                  src_comp: int = 0, dst_comp: int = 0, ncomp: Optional[int] = None) -> int:
        """Copy ``region`` from another fab; returns bytes copied."""
        nc = ncomp if ncomp is not None else min(self.ncomp - dst_comp,
                                                 other.ncomp - src_comp)
        src = other.view(region, slice(src_comp, src_comp + nc))
        dst = self.view(region, slice(dst_comp, dst_comp + nc))
        dst[...] = src
        return src.nbytes

    def copy_shifted_from(self, other: "FArrayBox", dst_region: Box,
                          shift: IntVect, src_comp: int = 0, dst_comp: int = 0,
                          ncomp: Optional[int] = None) -> int:
        """Copy into ``dst_region`` from ``other`` at ``dst_region.shift(shift)``.

        Used for periodic ghost fills where source and destination index
        spaces differ by a domain-length translation.
        """
        nc = ncomp if ncomp is not None else min(self.ncomp - dst_comp,
                                                 other.ncomp - src_comp)
        src = other.view(dst_region.shift(shift), slice(src_comp, src_comp + nc))
        dst = self.view(dst_region, slice(dst_comp, dst_comp + nc))
        dst[...] = src
        return src.nbytes

    # -- reductions --------------------------------------------------------
    def min(self, comp: int = 0, include_ghosts: bool = False) -> float:
        arr = self.data[comp] if include_ghosts else self.valid()[comp]
        return float(arr.min())

    def max(self, comp: int = 0, include_ghosts: bool = False) -> float:
        arr = self.data[comp] if include_ghosts else self.valid()[comp]
        return float(arr.max())

    def norm2(self, comp: int = 0) -> float:
        """L2 norm over the valid region."""
        v = self.valid()[comp]
        return float(np.sqrt(np.sum(v * v)))

    def contains_nan(self) -> bool:
        return bool(np.isnan(self.data).any())

    def __repr__(self) -> str:
        return f"FArrayBox(box={self.box}, ncomp={self.ncomp}, ngrow={self.ngrow})"
