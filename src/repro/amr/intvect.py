"""Integer index vectors for box-structured grids.

``IntVect`` is the dimension-aware integer tuple used throughout the AMR
substrate for cell indices, box extents, refinement ratios, and ghost
widths.  It mirrors ``amrex::IntVect`` semantics: componentwise arithmetic,
comparisons, and min/max reductions.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

IntVectLike = Union["IntVect", int, Sequence[int]]


class IntVect:
    """A small immutable integer vector of dimension 1, 2 or 3.

    Supports componentwise ``+ - * // %``, scalar broadcasting, and strict
    componentwise comparisons (``allLE``/``allGE``/``allLT``/``allGT``).
    """

    __slots__ = ("_v",)

    def __init__(self, *components: int) -> None:
        if len(components) == 1 and not isinstance(components[0], int):
            components = tuple(components[0])
        if not 1 <= len(components) <= 3:
            raise ValueError(f"IntVect dimension must be 1..3, got {len(components)}")
        if not all(isinstance(c, (int,)) or hasattr(c, "__index__") for c in components):
            raise TypeError(f"IntVect components must be integers, got {components!r}")
        self._v = tuple(int(c) for c in components)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def zero(cls, dim: int) -> "IntVect":
        """The zero vector of the given dimension."""
        return cls(*([0] * dim))

    @classmethod
    def unit(cls, dim: int) -> "IntVect":
        """The all-ones vector of the given dimension."""
        return cls(*([1] * dim))

    @classmethod
    def filled(cls, dim: int, value: int) -> "IntVect":
        """A vector with every component equal to ``value``."""
        return cls(*([value] * dim))

    @classmethod
    def coerce(cls, value: IntVectLike, dim: int) -> "IntVect":
        """Coerce an int, sequence, or IntVect to an IntVect of dimension ``dim``."""
        if isinstance(value, IntVect):
            if value.dim != dim:
                raise ValueError(f"expected dim {dim}, got {value.dim}")
            return value
        if isinstance(value, int) or hasattr(value, "__index__"):
            return cls.filled(dim, int(value))
        iv = cls(*value)
        if iv.dim != dim:
            raise ValueError(f"expected dim {dim}, got {iv.dim}")
        return iv

    # -- basic protocol --------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self._v)

    def __len__(self) -> int:
        return len(self._v)

    def __iter__(self) -> Iterator[int]:
        return iter(self._v)

    def __getitem__(self, i: int) -> int:
        return self._v[i]

    def __hash__(self) -> int:
        return hash(self._v)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntVect):
            return self._v == other._v
        if isinstance(other, (tuple, list)):
            return self._v == tuple(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"IntVect{self._v}"

    def tup(self) -> tuple:
        """The underlying tuple of components."""
        return self._v

    # -- arithmetic --------------------------------------------------------
    def _coerced(self, other: IntVectLike) -> "IntVect":
        return IntVect.coerce(other, self.dim)

    def __add__(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(a + b for a, b in zip(self._v, o._v)))

    __radd__ = __add__

    def __sub__(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(a - b for a, b in zip(self._v, o._v)))

    def __rsub__(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(b - a for a, b in zip(self._v, o._v)))

    def __mul__(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(a * b for a, b in zip(self._v, o._v)))

    __rmul__ = __mul__

    def __floordiv__(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(a // b for a, b in zip(self._v, o._v)))

    def __mod__(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(a % b for a, b in zip(self._v, o._v)))

    def __neg__(self) -> "IntVect":
        return IntVect(*(-a for a in self._v))

    # coarsen rounds toward -infinity, matching AMReX's amrex::coarsen
    def coarsen(self, ratio: IntVectLike) -> "IntVect":
        """Coarsen an index by a refinement ratio, rounding toward -inf."""
        r = self._coerced(ratio)
        if any(c <= 0 for c in r._v):
            raise ValueError(f"coarsening ratio must be positive, got {r}")
        return IntVect(*(a // b for a, b in zip(self._v, r._v)))

    def refine(self, ratio: IntVectLike) -> "IntVect":
        """Refine an index by a refinement ratio (componentwise multiply)."""
        r = self._coerced(ratio)
        return self * r

    # -- comparisons / reductions -------------------------------------------
    def allLE(self, other: IntVectLike) -> bool:
        o = self._coerced(other)
        return all(a <= b for a, b in zip(self._v, o._v))

    def allGE(self, other: IntVectLike) -> bool:
        o = self._coerced(other)
        return all(a >= b for a, b in zip(self._v, o._v))

    def allLT(self, other: IntVectLike) -> bool:
        o = self._coerced(other)
        return all(a < b for a, b in zip(self._v, o._v))

    def allGT(self, other: IntVectLike) -> bool:
        o = self._coerced(other)
        return all(a > b for a, b in zip(self._v, o._v))

    def min_with(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(min(a, b) for a, b in zip(self._v, o._v)))

    def max_with(self, other: IntVectLike) -> "IntVect":
        o = self._coerced(other)
        return IntVect(*(max(a, b) for a, b in zip(self._v, o._v)))

    def min(self) -> int:
        return min(self._v)

    def max(self) -> int:
        return max(self._v)

    def prod(self) -> int:
        p = 1
        for a in self._v:
            p *= a
        return p

    def sum(self) -> int:
        return sum(self._v)


def iv_zero(dim: int) -> IntVect:
    """Shorthand for :meth:`IntVect.zero`."""
    return IntVect.zero(dim)


def iv_unit(dim: int) -> IntVect:
    """Shorthand for :meth:`IntVect.unit`."""
    return IntVect.unit(dim)
