"""AverageDown: restrict fine-level data onto covered coarse cells.

After the final RK3 stage of a step, CRoCCo sets every coarse cell that is
covered by fine patches to the arithmetic mean of the covering fine cells
(Algorithm 2, line 11), keeping the levels consistent.
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.amr.intvect import IntVect, IntVectLike
from repro.amr.multifab import MultiFab
from repro.backend import LaunchSpec, parallel_for


def average_down(fine: MultiFab, crse: MultiFab, ratio: IntVectLike) -> None:
    """Overwrite coarse cells covered by ``fine`` with fine-cell averages.

    Data motion between differently-owned patches is recorded as
    ``averagedown`` traffic in the communicator's ledger; each coarse fab's
    restriction runs as one ``AverageDown`` launch charged with the fine
    points it reads.
    """
    if fine.ncomp != crse.ncomp:
        raise ValueError("AverageDown component mismatch")
    r = IntVect.coerce(ratio, fine.dim)
    for i, cfab in crse:
        pairs = []
        for j in fine.ba.intersecting(cfab.box.refine(r)):
            fbox = fine.ba[j]
            overlap_c = _fully_covered(fbox, r).intersect(cfab.box)
            if overlap_c.is_empty():
                continue
            pairs.append((j, overlap_c, overlap_c.refine(r)))
        if not pairs:
            continue

        def restrict(i=i, cfab=cfab, pairs=pairs):
            for j, overlap_c, overlap_f in pairs:
                fview = fine.fab(j).view(overlap_f)  # (ncomp, *fine shape)
                avg = _block_mean(fview, r)
                cfab.view(overlap_c)[...] = avg
                fine.comm.send_bytes(fine.dm[j], crse.dm[i], avg.nbytes,
                                     "averagedown")

        parallel_for("AverageDown", restrict,
                     sum(of.num_pts() for _, _, of in pairs),
                     LaunchSpec(kernel_class="averagedown",
                                rank=crse.dm[i]))


def _fully_covered(fbox: Box, r: IntVect) -> Box:
    """Largest coarse box whose refinement lies inside ``fbox``."""
    lo = [-(-l // rr) for l, rr in zip(fbox.lo, r)]  # ceil division
    hi = [(h + 1) // rr - 1 for h, rr in zip(fbox.hi, r)]
    return Box(IntVect(*lo), IntVect(*hi))


def _block_mean(fview: np.ndarray, r: IntVect) -> np.ndarray:
    """Mean over r-sized blocks of a (ncomp, n1*r1[, n2*r2[, n3*r3]]) array."""
    ncomp = fview.shape[0]
    dim = len(r)
    new_shape = [ncomp]
    for d in range(dim):
        n = fview.shape[d + 1]
        if n % r[d] != 0:
            raise ValueError("fine view not aligned to refinement ratio")
        new_shape.extend([n // r[d], r[d]])
    resh = fview.reshape(new_shape)
    # average over the interleaved ratio axes (2, 4, 6 ... after reshape)
    axes = tuple(2 + 2 * d for d in range(dim))
    return resh.mean(axis=axes)
