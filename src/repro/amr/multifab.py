"""Distributed patch data: the MultiFab.

``MultiFab`` mirrors ``amrex::MultiFab``: one :class:`FArrayBox` per box of
a :class:`BoxArray`, with ownership assigned to simulated ranks through a
:class:`DistributionMapping`.  In this single-process reproduction every
fab is resident, but all cross-rank data motion goes through the
communication routines (:mod:`repro.amr.boundary`,
:mod:`repro.amr.parallelcopy`) so that message volumes are recorded
faithfully in the CommLedger.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.fab import FArrayBox
from repro.amr.intvect import IntVect, IntVectLike
from repro.mpi.comm import Communicator, SerialComm


class MultiFab:
    """A collection of patch arrays distributed over simulated ranks."""

    def __init__(
        self,
        ba: BoxArray,
        dm: DistributionMapping,
        ncomp: int,
        ngrow: IntVectLike = 0,
        comm: Optional[Communicator] = None,
    ) -> None:
        if len(dm) != len(ba):
            raise ValueError("DistributionMapping length must match BoxArray")
        self.ba = ba
        self.dm = dm
        self.ncomp = ncomp
        self.ngrow = IntVect.coerce(ngrow, ba.dim) if len(ba) else IntVect.zero(max(ba.dim, 1))
        self.comm = comm if comm is not None else SerialComm()
        self._fabs: Dict[int, FArrayBox] = {
            i: FArrayBox(ba[i], ncomp, self.ngrow) for i in range(len(ba))
        }

    # -- construction helpers ------------------------------------------------
    @classmethod
    def like(cls, other: "MultiFab", ncomp: Optional[int] = None,
             ngrow: Optional[IntVectLike] = None) -> "MultiFab":
        """A new MultiFab on the same BoxArray/DistributionMapping/comm."""
        return cls(
            other.ba,
            other.dm,
            ncomp if ncomp is not None else other.ncomp,
            ngrow if ngrow is not None else other.ngrow,
            other.comm,
        )

    # -- protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ba)

    def __iter__(self) -> Iterator[Tuple[int, FArrayBox]]:
        """Iterate (global box index, fab) — the MFIter equivalent."""
        return iter(self._fabs.items())

    def fab(self, i: int) -> FArrayBox:
        return self._fabs[i]

    def owner(self, i: int) -> int:
        return self.dm[i]

    @property
    def dim(self) -> int:
        return self.ba.dim

    def num_pts(self) -> int:
        return self.ba.num_pts()

    def nbytes(self) -> int:
        return sum(f.nbytes() for f in self._fabs.values())

    # -- elementwise operations ----------------------------------------------
    def set_val(self, value: float, comp: Optional[int] = None) -> None:
        for f in self._fabs.values():
            f.set_val(value, comp=comp)

    def copy_values_from(self, other: "MultiFab", src_comp: int = 0,
                         dst_comp: int = 0, ncomp: Optional[int] = None) -> None:
        """Fab-by-fab copy; requires identical BoxArray and DistributionMapping."""
        if other.ba != self.ba or other.dm != self.dm:
            raise ValueError("copy_values_from requires matching layout; "
                             "use parallel_copy for redistribution")
        nc = ncomp if ncomp is not None else min(self.ncomp - dst_comp,
                                                 other.ncomp - src_comp)
        for i, f in self:
            f.copy_from(other.fab(i), f.box, src_comp, dst_comp, nc)

    def apply(self, fn: Callable[[np.ndarray], None], include_ghosts: bool = False) -> None:
        """Apply an in-place function to each fab's data (valid or whole array)."""
        for _, f in self:
            fn(f.whole() if include_ghosts else f.valid())

    def saxpy(self, a: float, x: "MultiFab", src_comp: int = 0,
              dst_comp: int = 0, ncomp: Optional[int] = None) -> None:
        """self += a * x over valid regions (layouts must match)."""
        if x.ba != self.ba:
            raise ValueError("saxpy requires matching BoxArray")
        nc = ncomp if ncomp is not None else min(self.ncomp - dst_comp,
                                                 x.ncomp - src_comp)
        for i, f in self:
            dst = f.valid(slice(dst_comp, dst_comp + nc))
            src = x.fab(i).valid(slice(src_comp, src_comp + nc))
            dst += a * src

    def scale(self, a: float) -> None:
        for _, f in self:
            f.valid()[...] *= a

    # -- reductions (via the communicator, so traffic is accounted) -----------
    def min(self, comp: int = 0) -> float:
        """Global min over valid regions, via a simulated tree reduction."""
        per_rank = self._per_rank_reduce(comp, np.min, np.inf)
        return self.comm.reduce_min(per_rank)

    def max(self, comp: int = 0) -> float:
        per_rank = self._per_rank_reduce(comp, np.max, -np.inf)
        return self.comm.reduce_max(per_rank)

    def sum(self, comp: int = 0) -> float:
        per_rank = self._per_rank_reduce(comp, np.sum, 0.0)
        return self.comm.reduce_sum(per_rank)

    def norm2(self, comp: int = 0) -> float:
        per_rank = [0.0] * self.comm.nranks
        for i, f in self:
            v = f.valid()[comp]
            per_rank[self.dm[i]] += float(np.sum(v * v))
        return float(np.sqrt(self.comm.reduce_sum(per_rank)))

    def _per_rank_reduce(self, comp: int, op, identity: float) -> list:
        per_rank = [identity] * self.comm.nranks
        for i, f in self:
            v = float(op(f.valid()[comp]))
            r = self.dm[i]
            if op is np.sum:
                per_rank[r] += v
            else:
                per_rank[r] = op([per_rank[r], v])
        return per_rank

    def contains_nan(self) -> bool:
        return any(f.contains_nan() for f in self._fabs.values())

    # -- communication (delegating; keeps this module data-only) --------------
    def fill_boundary(self, geom=None) -> None:
        """Exchange ghost cells between patches (and across periodic faces)."""
        from repro.amr.boundary import fill_boundary

        fill_boundary(self, geom)

    def parallel_copy(self, src: "MultiFab", src_comp: int = 0, dst_comp: int = 0,
                      ncomp: Optional[int] = None, fill_ghosts: bool = False) -> None:
        """Globally redistribute data from ``src`` (different layout allowed)."""
        from repro.amr.parallelcopy import parallel_copy

        parallel_copy(self, src, src_comp, dst_comp, ncomp, fill_ghosts)

    def __repr__(self) -> str:
        return (
            f"MultiFab(nboxes={len(self)}, ncomp={self.ncomp}, "
            f"ngrow={self.ngrow}, pts={self.num_pts()})"
        )
