"""Berger-Rigoutsos clustering of tagged cells into refinement boxes.

Given the set of tagged cells produced by :mod:`repro.amr.tagging`, build a
small set of rectangular boxes that cover every tag with at least
``grid_eff`` fraction of covered cells tagged — the classic
Berger-Rigoutsos (1991) signature/hole/inflection algorithm that AMReX
uses inside ``MakeNewGrids``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.intvect import IntVect, IntVectLike


def buffer_tags(tags: np.ndarray, n_buffer: int, domain: Box) -> np.ndarray:
    """Grow each tagged cell by ``n_buffer`` cells in every direction.

    This is AMReX's ``n_error_buf``: it keeps features from escaping the
    refined region between regrids (Sec. II-B's regrid-frequency logic
    assumes a buffer proportional to how far flow convects per regrid).
    """
    if len(tags) == 0 or n_buffer == 0:
        return tags
    dim = tags.shape[1]
    offsets = np.stack(
        np.meshgrid(*([np.arange(-n_buffer, n_buffer + 1)] * dim), indexing="ij"),
        axis=-1,
    ).reshape(-1, dim)
    grown = (tags[:, None, :] + offsets[None, :, :]).reshape(-1, dim)
    lo = np.array(domain.lo.tup())
    hi = np.array(domain.hi.tup())
    np.clip(grown, lo, hi, out=grown)
    return np.unique(grown, axis=0)


def cluster_tags(
    tags: np.ndarray,
    domain: Box,
    grid_eff: float = 0.7,
    blocking_factor: IntVectLike = 8,
    max_grid_size: IntVectLike = 128,
    min_size: int = 2,
) -> BoxArray:
    """Cover tagged cells with boxes via Berger-Rigoutsos, then align.

    Returned boxes are clipped to ``domain``, aligned to
    ``blocking_factor``, chopped to ``max_grid_size``, and pairwise
    disjoint.  ``tags`` is an (n, dim) integer index array.
    """
    dim = domain.dim
    bf = IntVect.coerce(blocking_factor, dim)
    ms = IntVect.coerce(max_grid_size, dim)
    if len(tags) == 0:
        return BoxArray([])
    raw = _berger_rigoutsos(np.asarray(tags, dtype=np.int64), grid_eff, min_size)
    # align to the blocking factor: expand to covering bf-aligned box
    aligned = [b.coarsen(bf).refine(bf).intersect(domain) for b in raw]
    aligned = [b for b in aligned if not b.is_empty()]
    # alignment can introduce overlap; make disjoint
    disjoint: List[Box] = []
    for b in aligned:
        pieces = [b]
        for existing in disjoint:
            nxt: List[Box] = []
            for p in pieces:
                nxt.extend(p.diff(existing))
            pieces = nxt
            if not pieces:
                break
        disjoint.extend(pieces)
    # re-align any off-bf fragments produced by diff by snapping outward,
    # then make disjoint again by preferring earlier boxes
    final: List[Box] = []
    for b in disjoint:
        snapped = b.coarsen(bf).refine(bf).intersect(domain)
        pieces = [snapped]
        for existing in final:
            nxt = []
            for p in pieces:
                nxt.extend(p.diff(existing))
            pieces = nxt
        final.extend(p for p in pieces if not p.is_empty())
    out: List[Box] = []
    for b in final:
        out.extend(b.max_size_chop(ms))
    out.sort(key=lambda b: b.lo.tup())
    return BoxArray(out)


def _berger_rigoutsos(tags: np.ndarray, grid_eff: float, min_size: int) -> List[Box]:
    dim = tags.shape[1]
    lo = IntVect(*tags.min(axis=0).tolist())
    hi = IntVect(*tags.max(axis=0).tolist())
    bbox = Box(lo, hi)
    eff = len(tags) / bbox.num_pts()
    if eff >= grid_eff or all(s <= min_size for s in bbox.size()):
        return [bbox]
    cut = _find_cut(tags, bbox, min_size)
    if cut is None:
        return [bbox]
    axis, at = cut
    left = tags[tags[:, axis] < at]
    right = tags[tags[:, axis] >= at]
    if len(left) == 0 or len(right) == 0:
        return [bbox]
    return _berger_rigoutsos(left, grid_eff, min_size) + _berger_rigoutsos(
        right, grid_eff, min_size
    )


def _find_cut(tags: np.ndarray, bbox: Box, min_size: int) -> Optional[Tuple[int, int]]:
    """Choose a cut (axis, index) by hole, then inflection, then bisection."""
    dim = tags.shape[1]
    # signatures: tag counts per plane along each axis
    sigs = []
    for d in range(dim):
        counts = np.bincount(
            tags[:, d] - bbox.lo[d], minlength=bbox.size()[d]
        )
        sigs.append(counts)
    # 1. holes: a zero plane strictly inside
    best_hole = None
    for d in range(dim):
        zeros = np.nonzero(sigs[d] == 0)[0]
        for z in zeros:
            at = bbox.lo[d] + int(z)
            if bbox.lo[d] + min_size <= at <= bbox.hi[d] - min_size + 1:
                # prefer the hole closest to the center of the longest axis
                dist = abs(z - bbox.size()[d] / 2)
                score = (-bbox.size()[d], dist)
                if best_hole is None or score < best_hole[0]:
                    best_hole = (score, d, at)
    if best_hole is not None:
        return best_hole[1], best_hole[2]
    # 2. inflection: largest jump in the discrete Laplacian of a signature
    best_inf = None
    for d in range(dim):
        s = sigs[d]
        if len(s) < 4 or bbox.size()[d] < 2 * min_size:
            continue
        lap = s[:-2] - 2 * s[1:-1] + s[2:]
        jump = np.abs(np.diff(lap))
        for k in np.argsort(-jump):
            at = bbox.lo[d] + int(k) + 2
            if bbox.lo[d] + min_size <= at <= bbox.hi[d] - min_size + 1:
                val = jump[k]
                if best_inf is None or val > best_inf[0]:
                    best_inf = (val, d, at)
                break
    if best_inf is not None and best_inf[0] > 0:
        return best_inf[1], best_inf[2]
    # 3. bisect the longest axis
    d = int(np.argmax([bbox.size()[k] for k in range(dim)]))
    if bbox.size()[d] < 2 * min_size:
        return None
    return d, bbox.lo[d] + bbox.size()[d] // 2
