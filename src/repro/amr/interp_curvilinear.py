"""Custom curvilinear interpolator (the CRoCCo 1.2/2.0 scheme).

AMReX's built-in interpolators assume index-space weights, i.e. that fine
points sit at fixed fractions between coarse points.  On a generalized
curvilinear grid that is false: physical spacing varies, so this
interpolator weighs the multilinear coefficients by *physical* distance,
using the stored coordinates MultiFab.

The price is data movement: the coordinates of the coarse stencil points
(beyond patch edges) must be gathered with a global ``ParallelCopy`` every
FillPatch — the communication bottleneck the paper quantifies by comparing
CRoCCo 2.0 against 2.1.  The interpolation is exact for linear fields and
reduces to :class:`~repro.amr.interpolate.TrilinearInterp` on uniform
grids, but (as the paper notes) is not conservative across interfaces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.intvect import IntVect, IntVectLike
from repro.amr.interpolate import Interpolator, _fine_fractions


class CurvilinearInterp(Interpolator):
    """Multilinear interpolation with physical-space weights."""

    radius = 1
    needs_coords = True
    kernel_label = "curvilinear"

    def interp(
        self,
        cfab: FArrayBox,
        fine_region: Box,
        ratio: IntVectLike,
        crse_coords: Optional[FArrayBox] = None,
        fine_coords: Optional[FArrayBox] = None,
    ) -> np.ndarray:
        if crse_coords is None or fine_coords is None:
            raise ValueError("CurvilinearInterp requires coarse and fine coordinates")
        ratio = IntVect.coerce(ratio, fine_region.dim)
        dim = fine_region.dim
        gb = cfab.grown_box()
        cgb = crse_coords.grown_box()

        bases = []
        for d in range(dim):
            ib, _ = _fine_fractions(fine_region, ratio, d)
            bases.append(ib)

        def gather(fab: FArrayBox, corner: int, base_box: Box) -> np.ndarray:
            idx = []
            for d in range(dim):
                hi = (corner >> d) & 1
                ib = bases[d] + hi - base_box.lo[d]
                if ib.min() < 0 or ib.max() >= base_box.shape()[d]:
                    raise ValueError("fab does not cover curvilinear stencil")
                idx.append(ib)
            return fab.data[(slice(None),) + np.ix_(*idx)]

        # physical coordinates of the 2^dim surrounding coarse points
        ccorners = [gather(crse_coords, c, cgb) for c in range(1 << dim)]
        xf = fine_coords.view(fine_region)  # (dim, *fine_shape)

        # per-axis weights: projection of (xf - x0) on the axis edge vector
        t = []
        x0 = ccorners[0]
        for d in range(dim):
            edge = ccorners[1 << d] - x0  # coarse edge along computational axis d
            denom = np.sum(edge * edge, axis=0)
            denom = np.where(denom > 0.0, denom, 1.0)
            td = np.sum((xf - x0) * edge, axis=0) / denom
            t.append(np.clip(td, 0.0, 1.0))

        out = np.zeros((cfab.ncomp,) + fine_region.shape(), dtype=np.float64)
        for corner in range(1 << dim):
            w = np.ones(fine_region.shape(), dtype=np.float64)
            for d in range(dim):
                w = w * (t[d] if (corner >> d) & 1 else (1.0 - t[d]))
            out += gather(cfab, corner, gb) * w[None]
        return out
