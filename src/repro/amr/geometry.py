"""Problem-domain geometry: index domain, physical extent, periodicity.

Mirrors ``amrex::Geometry``.  For curvilinear runs the physical coordinates
live in a coordinates MultiFab (see ``repro.numerics.metrics``); this class
always describes the rectangular *computational* domain that the physical
domain is mapped onto.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.intvect import IntVect, IntVectLike


class Geometry:
    """Computational-domain geometry at a single refinement level."""

    def __init__(
        self,
        domain: Box,
        prob_lo: Sequence[float],
        prob_hi: Sequence[float],
        periodic: Sequence[bool] | None = None,
    ) -> None:
        self.domain = domain
        self.prob_lo = tuple(float(x) for x in prob_lo)
        self.prob_hi = tuple(float(x) for x in prob_hi)
        if len(self.prob_lo) != domain.dim or len(self.prob_hi) != domain.dim:
            raise ValueError("prob_lo/prob_hi dimension mismatch with domain")
        if any(h <= l for l, h in zip(self.prob_lo, self.prob_hi)):
            raise ValueError("prob_hi must exceed prob_lo in every direction")
        self.periodic = tuple(bool(p) for p in (periodic or [False] * domain.dim))
        if len(self.periodic) != domain.dim:
            raise ValueError("periodic flags dimension mismatch")

    @property
    def dim(self) -> int:
        return self.domain.dim

    def cell_size(self) -> Tuple[float, ...]:
        """Uniform computational cell size in each direction."""
        n = self.domain.size()
        return tuple(
            (h - l) / s for l, h, s in zip(self.prob_lo, self.prob_hi, n)
        )

    def cell_centers(self, idim: int) -> np.ndarray:
        """Physical (computational-space) cell-center coordinates along one axis."""
        dx = self.cell_size()[idim]
        n = self.domain.size()[idim]
        return self.prob_lo[idim] + (np.arange(n) + 0.5) * dx

    def refine(self, ratio: IntVectLike) -> "Geometry":
        """Geometry of the next finer level (same physical extent)."""
        return Geometry(
            self.domain.refine(ratio), self.prob_lo, self.prob_hi, self.periodic
        )

    def coarsen(self, ratio: IntVectLike) -> "Geometry":
        """Geometry of the next coarser level (same physical extent)."""
        r = IntVect.coerce(ratio, self.dim)
        for d in range(self.dim):
            if self.domain.size()[d] % r[d] != 0:
                raise ValueError("domain not divisible by coarsening ratio")
        return Geometry(
            self.domain.coarsen(r), self.prob_lo, self.prob_hi, self.periodic
        )

    def periodic_shifts(self, box: Box) -> list:
        """Integer shifts mapping ``box`` into the domain across periodic faces.

        Returns a list of IntVect offsets (excluding the zero shift) such that
        ``box.shift(offset)`` may overlap the domain interior.  Used by
        FillBoundary to find periodic neighbor patches.
        """
        shifts = [IntVect.zero(self.dim)]
        n = self.domain.size()
        for d in range(self.dim):
            if not self.periodic[d]:
                continue
            new = []
            for s in shifts:
                for k in (-1, 1):
                    off = list(s)
                    off[d] += k * n[d]
                    new.append(IntVect(*off))
            shifts.extend(new)
        return [s for s in shifts if s != IntVect.zero(self.dim)]

    def __repr__(self) -> str:
        return (
            f"Geometry(domain={self.domain}, prob_lo={self.prob_lo}, "
            f"prob_hi={self.prob_hi}, periodic={self.periodic})"
        )
