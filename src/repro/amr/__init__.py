"""Block-structured AMR substrate (AMReX-equivalent).

This package reimplements, in pure Python/NumPy, the subset of the AMReX
framework that CRoCCo v2.0 depends on: box/index algebra, box arrays with
fast intersection, distribution mappings (Z-Morton space-filling curve,
knapsack), patch data containers (FArrayBox / MultiFab) with ghost cells,
ghost exchange (FillBoundary), global redistribution (ParallelCopy),
fill-patch operations across refinement levels, fine-to-coarse averaging
(AverageDown), interpolators (trilinear, curvilinear-weighted, WENO),
error tagging with Berger-Rigoutsos clustering, and the AmrCore level
hierarchy with dynamic regridding.
"""

from repro.amr.intvect import IntVect
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.geometry import Geometry
from repro.amr.fab import FArrayBox
from repro.amr.multifab import MultiFab
from repro.amr.amrcore import AmrCore, AmrConfig

__all__ = [
    "IntVect",
    "Box",
    "BoxArray",
    "DistributionMapping",
    "Geometry",
    "FArrayBox",
    "MultiFab",
    "AmrCore",
    "AmrConfig",
]
