"""Z-order (Morton) space-filling curve encoding.

AMReX's default ``DistributionMapping`` strategy orders boxes along a
Z-Morton space-filling curve before splitting them into per-rank chunks of
roughly equal weight; the curve keeps spatially adjacent boxes on nearby
ranks, which keeps most FillBoundary traffic node-local.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Number of bits of each coordinate that participate in the Morton code.
MORTON_BITS = 21  # 3 * 21 = 63 bits, fits in int64 domain-size up to 2^21 cells


def _part_bits(x: np.ndarray, dim: int) -> np.ndarray:
    """Spread the low MORTON_BITS bits of x so consecutive bits are dim apart."""
    x = x.astype(np.uint64) & np.uint64((1 << MORTON_BITS) - 1)
    if dim == 1:
        return x
    if dim == 2:
        # interleave with one zero between bits (magic-number spreading)
        x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
        x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
        x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
        x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
        return x
    # dim == 3: two zeros between bits
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_encode(coords: np.ndarray) -> np.ndarray:
    """Morton-encode an (n, dim) array of non-negative integer coordinates.

    Returns an (n,) uint64 array of Z-order keys.  Coordinates must fit in
    :data:`MORTON_BITS` bits.
    """
    coords = np.asarray(coords)
    if coords.ndim == 1:
        coords = coords[None, :]
    n, dim = coords.shape
    if dim not in (1, 2, 3):
        raise ValueError(f"morton_encode supports dim 1..3, got {dim}")
    if coords.min(initial=0) < 0:
        raise ValueError("morton_encode requires non-negative coordinates")
    if coords.max(initial=0) >= (1 << MORTON_BITS):
        raise ValueError(f"coordinates exceed {MORTON_BITS}-bit Morton range")
    code = np.zeros(n, dtype=np.uint64)
    for d in range(dim):
        code |= _part_bits(coords[:, d], dim) << np.uint64(d)
    return code


def morton_key(coord: Sequence[int]) -> int:
    """Morton key of a single coordinate tuple."""
    return int(morton_encode(np.asarray([list(coord)], dtype=np.int64))[0])


def morton_order(coords: np.ndarray) -> np.ndarray:
    """Permutation that sorts coordinates along the Z-Morton curve (stable)."""
    return np.argsort(morton_encode(coords), kind="stable")
