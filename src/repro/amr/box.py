"""Rectangular index boxes.

``Box`` is a closed integer interval ``[lo, hi]`` in index space — the
fundamental unit of a block-structured AMR decomposition, mirroring
``amrex::Box`` (cell-centered only; nodal index types are handled by the
interpolators that need them).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.amr.intvect import IntVect, IntVectLike


class Box:
    """A closed rectangular region of index space ``[lo, hi]`` (inclusive).

    A box with any component of ``hi`` strictly below the corresponding
    component of ``lo`` is *empty*.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: IntVectLike, hi: IntVectLike) -> None:
        if isinstance(lo, IntVect):
            dim = lo.dim
        elif isinstance(hi, IntVect):
            dim = hi.dim
        else:
            dim = len(tuple(lo))
        self.lo = IntVect.coerce(lo, dim)
        self.hi = IntVect.coerce(hi, dim)

    @classmethod
    def from_extent(cls, lo: IntVectLike, size: IntVectLike) -> "Box":
        """Build a box from a low corner and a size (number of cells)."""
        lo_iv = lo if isinstance(lo, IntVect) else IntVect(*lo) if not isinstance(lo, int) else IntVect(lo)
        size_iv = IntVect.coerce(size, lo_iv.dim)
        return cls(lo_iv, lo_iv + size_iv - IntVect.unit(lo_iv.dim))

    @classmethod
    def cube(cls, dim: int, n: int) -> "Box":
        """The box ``[0, n-1]^dim``."""
        return cls(IntVect.zero(dim), IntVect.filled(dim, n - 1))

    # -- basic properties ----------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.dim

    def size(self) -> IntVect:
        """Number of cells in each direction (may be <= 0 if empty)."""
        return self.hi - self.lo + IntVect.unit(self.dim)

    def num_pts(self) -> int:
        """Total number of cells; 0 if the box is empty."""
        if self.is_empty():
            return 0
        return self.size().prod()

    def is_empty(self) -> bool:
        return any(h < l for l, h in zip(self.lo, self.hi))

    def ok(self) -> bool:
        return not self.is_empty()

    def shape(self) -> Tuple[int, ...]:
        """NumPy-style shape tuple for an array covering this box."""
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    def contains(self, other: "Box | IntVect") -> bool:
        """Whether ``other`` (a Box or an index) lies entirely inside this box."""
        if isinstance(other, IntVect):
            return self.lo.allLE(other) and other.allLE(self.hi)
        if other.is_empty():
            return True
        return self.lo.allLE(other.lo) and other.hi.allLE(self.hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Box({self.lo.tup()}, {self.hi.tup()})"

    # -- transformations -------------------------------------------------
    def grow(self, n: IntVectLike) -> "Box":
        """Grow (or shrink, for negative n) the box by n cells on every face."""
        g = IntVect.coerce(n, self.dim)
        return Box(self.lo - g, self.hi + g)

    def grow_lo(self, idim: int, n: int) -> "Box":
        """Grow only the low side of direction ``idim`` by ``n`` cells."""
        lo = list(self.lo)
        lo[idim] -= n
        return Box(IntVect(*lo), self.hi)

    def grow_hi(self, idim: int, n: int) -> "Box":
        """Grow only the high side of direction ``idim`` by ``n`` cells."""
        hi = list(self.hi)
        hi[idim] += n
        return Box(self.lo, IntVect(*hi))

    def shift(self, offset: IntVectLike) -> "Box":
        """Translate the box by an integer offset."""
        o = IntVect.coerce(offset, self.dim)
        return Box(self.lo + o, self.hi + o)

    def coarsen(self, ratio: IntVectLike) -> "Box":
        """Coarsen by a refinement ratio (covers at least the original region)."""
        r = IntVect.coerce(ratio, self.dim)
        lo = self.lo.coarsen(r)
        # high end: index of the coarse cell containing hi
        hi = self.hi.coarsen(r)
        return Box(lo, hi)

    def refine(self, ratio: IntVectLike) -> "Box":
        """Refine by a refinement ratio; exact inverse of coarsen for aligned boxes."""
        r = IntVect.coerce(ratio, self.dim)
        lo = self.lo * r
        hi = (self.hi + IntVect.unit(self.dim)) * r - IntVect.unit(self.dim)
        return Box(lo, hi)

    def intersect(self, other: "Box") -> "Box":
        """The (possibly empty) intersection with another box."""
        return Box(self.lo.max_with(other.lo), self.hi.min_with(other.hi))

    def intersects(self, other: "Box") -> bool:
        return not self.intersect(other).is_empty()

    # -- decomposition helpers ---------------------------------------------
    def chop(self, idim: int, at: int) -> Tuple["Box", "Box"]:
        """Split into two boxes at index ``at`` along ``idim``.

        The low box covers ``[lo, at-1]`` and the high box ``[at, hi]``.
        """
        if not (self.lo[idim] < at <= self.hi[idim]):
            raise ValueError(f"chop point {at} outside ({self.lo[idim]}, {self.hi[idim]}]")
        lo_hi = list(self.hi)
        lo_hi[idim] = at - 1
        hi_lo = list(self.lo)
        hi_lo[idim] = at
        return Box(self.lo, IntVect(*lo_hi)), Box(IntVect(*hi_lo), self.hi)

    def max_size_chop(self, max_size: IntVectLike) -> List["Box"]:
        """Chop recursively so no resulting box exceeds ``max_size`` cells per direction."""
        ms = IntVect.coerce(max_size, self.dim)
        out: List[Box] = []
        stack = [self]
        while stack:
            b = stack.pop()
            for d in range(self.dim):
                if b.size()[d] > ms[d]:
                    # split into ceil(size/max) nearly-equal chunks: cut at lo + half
                    n_chunks = -(-b.size()[d] // ms[d])
                    cut = b.lo[d] + (b.size()[d] // n_chunks)
                    a, c = b.chop(d, cut)
                    stack.append(a)
                    stack.append(c)
                    break
            else:
                out.append(b)
        out.sort(key=lambda b: b.lo.tup())
        return out

    def diff(self, other: "Box") -> List["Box"]:
        """This box minus ``other``, as a disjoint list of boxes."""
        isect = self.intersect(other)
        if isect.is_empty():
            return [self]
        out: List[Box] = []
        rem = self
        for d in range(self.dim):
            if rem.lo[d] < isect.lo[d]:
                low, rem = rem.chop(d, isect.lo[d])
                out.append(low)
            if isect.hi[d] < rem.hi[d]:
                rem, high = rem.chop(d, isect.hi[d] + 1)
                out.append(high)
        return out

    # -- iteration -----------------------------------------------------------
    def indices(self) -> Iterator[IntVect]:
        """Iterate over every cell index in the box (row-major)."""
        if self.is_empty():
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]

        def rec(prefix, rest):
            if not rest:
                yield IntVect(*prefix)
                return
            for i in rest[0]:
                yield from rec(prefix + [i], rest[1:])

        yield from rec([], ranges)

    def slices(self, relative_to: Optional["Box"] = None) -> Tuple[slice, ...]:
        """NumPy slices selecting this box inside an array that covers ``relative_to``.

        ``relative_to`` defaults to ``self`` (slices covering the whole array).
        """
        base = relative_to if relative_to is not None else self
        return tuple(
            slice(l - bl, h - bl + 1) for l, h, bl in zip(self.lo, self.hi, base.lo)
        )
