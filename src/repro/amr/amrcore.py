"""AmrCore: the multi-level grid hierarchy with dynamic regridding.

Mirrors ``amrex::AmrCore``: owns per-level Geometry / BoxArray /
DistributionMapping, and drives regridding (error estimation ->
Berger-Rigoutsos clustering -> level creation/remake/clear) through
callbacks supplied by the application, exactly the hooks CRoCCo implements
(`MakeNewLevelFromScratch`, `MakeNewLevelFromCoarse`, `RemakeLevel`,
`ClearLevel`, `ErrorEst`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.cluster import buffer_tags, cluster_tags
from repro.amr.distribution import DistributionMapping
from repro.amr.geometry import Geometry
from repro.amr.intvect import IntVect
from repro.mpi.comm import Communicator, SerialComm


@dataclass
class AmrConfig:
    """AMR input-deck parameters (names follow the AMReX input deck).

    The paper's hand-tuned values: ``blocking_factor=8`` (at least the
    ghost width of the numerics), ``max_grid_size=128``.
    """

    max_level: int = 0
    ref_ratio: int = 2
    blocking_factor: int = 8
    max_grid_size: int = 128
    grid_eff: float = 0.7
    n_error_buf: int = 1
    regrid_int: int = 2
    strategy: str = "sfc"
    #: proper-nesting buffer: level l+1 grids must keep this many level-l
    #: cells between themselves and any region level l does not cover, so
    #: fine ghost shells and their interpolation stencils always find
    #: coarse data (except at physical boundaries)
    n_proper: int = 5

    def __post_init__(self) -> None:
        if self.max_level < 0:
            raise ValueError("max_level must be >= 0")
        if self.ref_ratio < 2:
            raise ValueError("ref_ratio must be >= 2")
        if self.max_grid_size % self.blocking_factor != 0:
            raise ValueError("max_grid_size must be divisible by blocking_factor")


class AmrCore:
    """Level hierarchy manager.

    Applications subclass (or register callbacks on) this class; the CRoCCo
    driver in :mod:`repro.core.crocco` does the former.
    """

    def __init__(
        self,
        geom0: Geometry,
        config: AmrConfig,
        comm: Optional[Communicator] = None,
    ) -> None:
        self.amr_config = config
        self.comm = comm if comm is not None else SerialComm()
        self.geoms: List[Geometry] = [geom0]
        for lev in range(1, config.max_level + 1):
            self.geoms.append(self.geoms[-1].refine(config.ref_ratio))
        self.box_arrays: List[Optional[BoxArray]] = [None] * (config.max_level + 1)
        self.dmaps: List[Optional[DistributionMapping]] = [None] * (config.max_level + 1)
        self.finest_level = -1

    # -- application hooks (override in subclass) ------------------------------
    def make_new_level_from_scratch(self, lev: int, ba: BoxArray,
                                    dm: DistributionMapping) -> None:
        raise NotImplementedError

    def make_new_level_from_coarse(self, lev: int, ba: BoxArray,
                                   dm: DistributionMapping) -> None:
        raise NotImplementedError

    def remake_level(self, lev: int, ba: BoxArray, dm: DistributionMapping) -> None:
        raise NotImplementedError

    def clear_level(self, lev: int) -> None:
        raise NotImplementedError

    def error_est(self, lev: int) -> np.ndarray:
        """Return an (n, dim) array of tagged cell indices on level ``lev``."""
        raise NotImplementedError

    # -- hierarchy construction ------------------------------------------------
    def ref_ratio_iv(self) -> IntVect:
        return IntVect.filled(self.geoms[0].dim, self.amr_config.ref_ratio)

    def init_from_scratch(self) -> None:
        """Build level 0 over the whole domain, then finer levels from tags."""
        cfg = self.amr_config
        ba0 = BoxArray.from_domain(
            self.geoms[0].domain, cfg.max_grid_size, cfg.blocking_factor
        )
        dm0 = DistributionMapping.make(ba0, self.comm.nranks, cfg.strategy)
        self.box_arrays[0] = ba0
        self.dmaps[0] = dm0
        self.finest_level = 0
        self.make_new_level_from_scratch(0, ba0, dm0)
        # grow finer levels one at a time from initial-condition tags
        for lev in range(cfg.max_level):
            ba = self._grids_from_tags(lev)
            if ba is None or len(ba) == 0:
                break
            dm = DistributionMapping.make(ba, self.comm.nranks, cfg.strategy)
            self.box_arrays[lev + 1] = ba
            self.dmaps[lev + 1] = dm
            self.finest_level = lev + 1
            self.make_new_level_from_coarse(lev + 1, ba, dm)

    def regrid(self, base_lev: int = 0) -> bool:
        """Re-tag and re-cluster levels above ``base_lev``; returns True if changed."""
        cfg = self.amr_config
        changed = False
        for lev in range(base_lev, cfg.max_level):
            if lev > self.finest_level:
                break
            new_ba = self._grids_from_tags(lev)
            if new_ba is None or len(new_ba) == 0:
                # drop the finer level entirely if it exists
                if lev + 1 <= self.finest_level:
                    for l in range(self.finest_level, lev, -1):
                        self.clear_level(l)
                        self.box_arrays[l] = None
                        self.dmaps[l] = None
                    self.finest_level = lev
                    changed = True
                break
            if new_ba == self.box_arrays[lev + 1]:
                continue
            dm = DistributionMapping.make(new_ba, self.comm.nranks, cfg.strategy)
            if lev + 1 <= self.finest_level:
                self.remake_level(lev + 1, new_ba, dm)
            else:
                self.make_new_level_from_coarse(lev + 1, new_ba, dm)
                self.finest_level = lev + 1
            self.box_arrays[lev + 1] = new_ba
            self.dmaps[lev + 1] = dm
            changed = True
        if changed:
            # regridding involves metadata exchange; account a broadcast of
            # the new box lists from the clustering root to every rank
            nboxes = sum(
                len(self.box_arrays[l] or [])
                for l in range(1, self.finest_level + 1)
            )
            meta_bytes = nboxes * 6 * 8  # lo/hi triples as int64
            for r in range(1, self.comm.nranks):
                self.comm.send_bytes(0, r, meta_bytes, "regrid")
        return changed

    def _grids_from_tags(self, lev: int) -> Optional[BoxArray]:
        """Cluster level-``lev`` tags into the level ``lev+1`` BoxArray."""
        cfg = self.amr_config
        tags = self.error_est(lev)
        if tags is None or len(tags) == 0:
            return BoxArray([])
        tags = buffer_tags(tags, cfg.n_error_buf, self.geoms[lev].domain)
        # cluster in level-lev index space with constraints expressed there
        r = cfg.ref_ratio
        bf_c = max(1, cfg.blocking_factor // r)
        ms_c = max(bf_c, cfg.max_grid_size // r)
        ba_c = cluster_tags(
            tags,
            self.geoms[lev].domain,
            grid_eff=cfg.grid_eff,
            blocking_factor=bf_c,
            max_grid_size=ms_c,
        )
        if lev > 0:
            ba_c = self._clip_to_coverage(ba_c, lev)
        return ba_c.refine(self.ref_ratio_iv())

    def _clip_to_coverage(self, ba_c: BoxArray, lev: int) -> BoxArray:
        """Proper nesting: keep new grids ``n_proper`` cells inside level
        ``lev``'s coverage (measured from any uncovered region inside the
        domain; the physical boundary needs no buffer)."""
        cov = self.box_arrays[lev]
        assert cov is not None
        # uncovered regions of the level-lev domain, grown by the buffer
        forbidden = [
            u.grow(self.amr_config.n_proper)
            for u in cov.complement_in(self.geoms[lev].domain)
        ]
        out: List[Box] = []
        for b in ba_c:
            for _, overlap in cov.intersections(b):
                pieces = [overlap]
                for f in forbidden:
                    nxt: List[Box] = []
                    for p in pieces:
                        nxt.extend(p.diff(f))
                    pieces = nxt
                    if not pieces:
                        break
                for p in pieces:
                    out.extend(_dedup_diffs(p, out))
        out.sort(key=lambda b: b.lo.tup())
        return BoxArray(out)

    # -- bookkeeping ---------------------------------------------------------
    def num_active_pts(self) -> int:
        """Active (valid) cells summed over levels — the AMR working set."""
        return sum(
            (self.box_arrays[l].num_pts() if self.box_arrays[l] else 0)
            for l in range(self.finest_level + 1)
        )

    def equivalent_uniform_pts(self) -> int:
        """Cells of a uniform grid at the finest level's resolution.

        The paper's Table I reports "equivalent grid points" in this sense
        and quotes 89-94% savings of actual vs equivalent points.
        """
        return self.geoms[self.finest_level].domain.num_pts()

    def amr_savings(self) -> float:
        """Fraction of grid points saved vs the equivalent uniform grid."""
        equiv = self.equivalent_uniform_pts()
        if equiv == 0:
            return 0.0
        return 1.0 - self.num_active_pts() / equiv


def _dedup_diffs(box: Box, existing: List[Box]) -> List[Box]:
    """``box`` minus all boxes in ``existing`` as disjoint pieces."""
    pieces = [box]
    for e in existing:
        nxt: List[Box] = []
        for p in pieces:
            nxt.extend(p.diff(e))
        pieces = nxt
        if not pieces:
            break
    return pieces


def optimal_regrid_interval(min_patch_cells: int, cfl: float,
                            n_error_buf: int = 1) -> int:
    """Regrid-frequency estimate from the paper (Sec. II-B).

    Information travels at most ``cfl`` cells per step; regrid before a
    feature can convect from a patch interior across a fine/coarse
    interface, i.e. roughly every ``(half patch width - buffer) / cfl``
    steps (at least 1).
    """
    if cfl <= 0:
        raise ValueError("cfl must be positive")
    travel = max(1.0, min_patch_cells / 2.0 - n_error_buf)
    return max(1, int(math.floor(travel / cfl)))
