"""Coarse-to-fine spatial interpolators.

The paper contrasts three interpolation schemes at coarse/fine AMR
interfaces:

- AMReX's built-in **trilinear** interpolator (uniform index-space weights;
  used by CRoCCo 2.1),
- the custom **curvilinear** interpolator that weighs coefficients by
  physical grid spacing (CRoCCo 1.2/2.0; see
  :mod:`repro.amr.interp_curvilinear`),
- a high-order **WENO-SYMBO** interpolator under development (see
  :mod:`repro.amr.interp_weno`).

All interpolators implement :class:`Interpolator`: given a coarse fab
covering the needed coarse region, produce fine values on a fine-index
region.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.intvect import IntVect, IntVectLike


class Interpolator:
    """Base class for coarse-to-fine interpolation."""

    #: number of coarse ghost cells needed around the coarsened fine region
    radius: int = 1

    #: whether the interpolator needs physical coordinates (curvilinear)
    needs_coords: bool = False

    #: suffix of the ``Interp_<label>`` launch name in device accounting
    kernel_label: str = "generic"

    def coarse_region(self, fine_region: Box, ratio: IntVectLike) -> Box:
        """The coarse-index region required to fill ``fine_region``."""
        return fine_region.coarsen(ratio).grow(self.radius)

    def interp(
        self,
        cfab: FArrayBox,
        fine_region: Box,
        ratio: IntVectLike,
        crse_coords: Optional[FArrayBox] = None,
        fine_coords: Optional[FArrayBox] = None,
    ) -> np.ndarray:
        """Return (ncomp, *fine_region.shape()) interpolated values."""
        raise NotImplementedError


def _fine_fractions(fine_region: Box, ratio: IntVect, idim: int):
    """Per-axis base coarse index and fractional offset of fine cell centers.

    A fine cell ``i_f`` has its center at coarse coordinate
    ``(i_f + 0.5) / r - 0.5`` in units of coarse cells.  Returns
    ``(ibase, frac)`` with ``ibase`` the lower coarse neighbor index and
    ``frac`` in [0, 1) the linear weight toward the upper neighbor.
    """
    r = ratio[idim]
    i_f = np.arange(fine_region.lo[idim], fine_region.hi[idim] + 1)
    center = (i_f + 0.5) / r - 0.5
    ibase = np.floor(center).astype(np.int64)
    frac = center - ibase
    return ibase, frac


class TrilinearInterp(Interpolator):
    """AMReX-style multilinear interpolation with index-space weights.

    On a uniform grid the interpolation coefficients depend only on the
    refinement ratio (for nodal data they are multiples of 1/2; for
    ratio-2 cell-centered data they are 1/4 and 3/4), which is exactly the
    assumption the curvilinear interpolator must relax.
    No global communication is required — this is the CRoCCo 2.1 choice.
    """

    radius = 1
    kernel_label = "trilinear"

    def interp(self, cfab, fine_region, ratio, crse_coords=None, fine_coords=None):
        ratio = IntVect.coerce(ratio, fine_region.dim)
        dim = fine_region.dim
        gb = cfab.grown_box()
        bases = []
        fracs = []
        for d in range(dim):
            ib, fr = _fine_fractions(fine_region, ratio, d)
            # indices relative to cfab array
            ib = ib - gb.lo[d]
            if ib.min() < 0 or (ib + 1).max() >= gb.shape()[d]:
                raise ValueError("coarse fab does not cover interpolation stencil")
            bases.append(ib)
            fracs.append(fr)
        out = np.zeros((cfab.ncomp,) + fine_region.shape(), dtype=np.float64)
        # accumulate over the 2^dim corners with separable linear weights
        for corner in range(1 << dim):
            idx = []
            w = 1.0
            for d in range(dim):
                hi = (corner >> d) & 1
                ib = bases[d] + hi
                wd = fracs[d] if hi else (1.0 - fracs[d])
                shape = [1] * dim
                shape[d] = -1
                idx.append(ib)
                w = w * wd.reshape(shape)
            mesh = np.ix_(*idx)
            out += cfab.data[(slice(None),) + mesh] * w
        return out


class PiecewiseConstantInterp(Interpolator):
    """Injection: every fine cell takes its covering coarse cell's value."""

    radius = 0
    kernel_label = "pconst"

    def interp(self, cfab, fine_region, ratio, crse_coords=None, fine_coords=None):
        ratio = IntVect.coerce(ratio, fine_region.dim)
        gb = cfab.grown_box()
        idx = []
        for d in range(fine_region.dim):
            i_f = np.arange(fine_region.lo[d], fine_region.hi[d] + 1)
            ic = np.floor_divide(i_f, ratio[d]) - gb.lo[d]
            if ic.min() < 0 or ic.max() >= gb.shape()[d]:
                raise ValueError("coarse fab does not cover fine region")
            idx.append(ic)
        mesh = np.ix_(*idx)
        return cfab.data[(slice(None),) + mesh].copy()


class ConservativeLinearInterp(Interpolator):
    """Cell-conservative linear interpolation with van Leer slope limiting.

    Matches ``amrex::cell_cons_interp``: fits limited slopes in each coarse
    cell and evaluates them at fine cell centers, preserving the coarse
    cell mean exactly (the conservation property the paper notes its custom
    curvilinear interpolator lacks).
    """

    radius = 1
    kernel_label = "conslinear"

    def interp(self, cfab, fine_region, ratio, crse_coords=None, fine_coords=None):
        ratio = IntVect.coerce(ratio, fine_region.dim)
        dim = fine_region.dim
        gb = cfab.grown_box()
        crse = cfab.data
        # coarse region covering the fine region (no ghost growth)
        cregion = fine_region.coarsen(ratio)
        csl = tuple(
            slice(cregion.lo[d] - gb.lo[d], cregion.hi[d] - gb.lo[d] + 1)
            for d in range(dim)
        )
        out = None
        center = crse[(slice(None),) + csl]
        # start from piecewise-constant and add limited slope corrections
        reps = tuple(ratio[d] for d in range(dim))
        out = _tile(center, reps, fine_region, cregion, ratio)
        for d in range(dim):
            lo_sl = list(csl)
            hi_sl = list(csl)
            lo_sl[d] = slice(csl[d].start - 1, csl[d].stop - 1)
            hi_sl[d] = slice(csl[d].start + 1, csl[d].stop + 1)
            left = crse[(slice(None),) + tuple(lo_sl)]
            right = crse[(slice(None),) + tuple(hi_sl)]
            df = right - center
            db = center - left
            # van Leer limiter (monotonized central)
            slope = np.where(
                df * db > 0.0,
                np.sign(df) * np.minimum(
                    0.5 * np.abs(df + db), 2.0 * np.minimum(np.abs(df), np.abs(db))
                ),
                0.0,
            )
            slope_f = _tile(slope, reps, fine_region, cregion, ratio)
            # offset of each fine center from its coarse center, in coarse cells
            i_f = np.arange(fine_region.lo[d], fine_region.hi[d] + 1)
            off = (i_f + 0.5) / ratio[d] - (np.floor_divide(i_f, ratio[d]) + 0.5)
            shape = [1] * (dim + 1)
            shape[d + 1] = -1
            out += slope_f * off.reshape(shape)
        return out


def _tile(carr: np.ndarray, reps, fine_region: Box, cregion: Box, ratio: IntVect):
    """Expand a coarse array to fine resolution by repetition, then crop.

    ``carr`` covers ``cregion``; the result covers ``fine_region``.
    """
    fine_full = np.asarray(carr)
    for d in range(fine_region.dim):
        fine_full = np.repeat(fine_full, reps[d], axis=d + 1)
    # fine_full covers cregion.refine(ratio); crop to fine_region
    full_box = cregion.refine(ratio)
    sl = fine_region.slices(relative_to=full_box)
    return fine_full[(slice(None),) + sl].copy()
