"""WENO interpolation across coarse/fine AMR interfaces.

The paper describes a high-order, bandwidth-optimized WENO interpolation
scheme *in development*, designed to match the dissipation and
order-of-accuracy of the WENO-SYMBO flux reconstruction so that the
interface introduces minimal extra error.  We implement a nonlinear WENO
interpolant in that spirit: dimension-by-dimension WENO interpolation of
point values at fine-cell locations, using two quadratic candidate
stencils combined with Jiang-Shu smoothness indicators (fourth-order in
smooth regions, non-oscillatory at shocks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.intvect import IntVect, IntVectLike
from repro.amr.interpolate import Interpolator, _fine_fractions

#: Jiang-Shu epsilon guarding against zero smoothness
WENO_EPS = 1e-6


def _quadratic_eval(v0, v1, v2, x):
    """Evaluate the quadratic through values at -1, 0, 1 at offset ``x``."""
    a = 0.5 * (v0 - 2.0 * v1 + v2)
    b = 0.5 * (v2 - v0)
    return v1 + b * x + a * x * x


def _linear_weight(x: float) -> float:
    """Optimal weight of the left-biased stencil so the pair reproduces the
    cubic through the four points {-1, 0, 1, 2} at offset ``x`` in [0, 1]."""
    # gamma * q_left(x) + (1-gamma) * q_right(x) == cubic(x)  =>  gamma = (2-x)/3
    return (2.0 - x) / 3.0


def weno_interp_1d(v: np.ndarray, base: np.ndarray, frac: np.ndarray, axis: int) -> np.ndarray:
    """WENO-interpolate ``v`` along ``axis`` at points ``base + frac``.

    ``v`` holds point values with index origin 0 along ``axis``.  ``base``
    (int) and ``frac`` in [0,1) give target locations.  Requires
    ``base-1 >= 0`` and ``base+2 <= len-1`` (two ghost points each side).
    """
    v = np.moveaxis(v, axis, -1)
    n = v.shape[-1]
    if base.min() - 1 < 0 or base.max() + 2 > n - 1:
        raise ValueError("insufficient ghost points for WENO interpolation")
    vm1 = v[..., base - 1]
    v0 = v[..., base]
    vp1 = v[..., base + 1]
    vp2 = v[..., base + 2]

    # left-biased quadratic through (-1, 0, 1), right-biased through (0, 1, 2)
    ql = _quadratic_eval(vm1, v0, vp1, frac)
    qr = _quadratic_eval(v0, vp1, vp2, frac - 1.0)

    # Jiang-Shu smoothness indicators of the two quadratics
    bl = (13.0 / 12.0) * (vm1 - 2 * v0 + vp1) ** 2 + 0.25 * (vm1 - vp1) ** 2
    br = (13.0 / 12.0) * (v0 - 2 * vp1 + vp2) ** 2 + 0.25 * (v0 - vp2) ** 2

    gl = _linear_weight(frac)
    gr = 1.0 - gl
    al = gl / (WENO_EPS + bl) ** 2
    ar = gr / (WENO_EPS + br) ** 2
    wsum = al + ar
    out = (al * ql + ar * qr) / wsum
    return np.moveaxis(out, -1, axis)


class WenoInterp(Interpolator):
    """Dimension-by-dimension nonlinear WENO interpolation (4th order smooth)."""

    radius = 2
    kernel_label = "weno"

    def interp(
        self,
        cfab: FArrayBox,
        fine_region: Box,
        ratio: IntVectLike,
        crse_coords: Optional[FArrayBox] = None,
        fine_coords: Optional[FArrayBox] = None,
    ) -> np.ndarray:
        ratio = IntVect.coerce(ratio, fine_region.dim)
        dim = fine_region.dim
        gb = cfab.grown_box()
        arr = cfab.data  # (ncomp, *gb.shape())
        # interpolate axis by axis: after axis d the array covers fine
        # resolution in axes <= d and coarse resolution (with ghosts) beyond
        for d in range(dim):
            base, frac = _fine_fractions(fine_region, ratio, d)
            base = base - gb.lo[d]
            arr = weno_interp_1d(arr, base, frac, axis=d + 1)
        return arr
