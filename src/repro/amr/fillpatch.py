"""FillPatch: assemble ghost data for a level from all available sources.

Mirrors ``amrex::FillPatchUtil``:

- :func:`fill_patch_single_level` — for the coarsest level: same-level
  ghost exchange (point-to-point FillBoundary) plus physical boundary fill.
- :func:`fill_patch_two_levels` — for finer levels: same-level exchange,
  then coarse-to-fine interpolation into ghost cells at coarse/fine
  interfaces, then physical boundary fill.  When the interpolator needs
  physical coordinates (the curvilinear scheme), the coordinates MultiFab
  is first copied into a temporary with extra ghost cells via a *global*
  ``ParallelCopy`` — the communication bottleneck the paper isolates by
  comparing CRoCCo 2.0 (custom curvilinear interpolator) with 2.1
  (built-in trilinear interpolator, no ParallelCopy).
- :func:`fill_coarse_patch` — initialize an entire new fine level from
  coarse data (used by regrid when new patches appear).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Optional

import numpy as np

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.geometry import Geometry
from repro.amr.intvect import IntVect, IntVectLike
from repro.amr.interpolate import Interpolator
from repro.amr.multifab import MultiFab
from repro.backend import LaunchSpec, parallel_for

#: signature: bc_fill(fab, geom, time) fills ghost cells outside the domain
BCFill = Callable[[FArrayBox, Geometry, float], None]


def _region(profiler, name: str):
    """The profiler's sub-region, or a no-op context when unprofiled."""
    return profiler.region(name) if profiler is not None else nullcontext()


def _bc_fill_launch(bc_fill: BCFill, fab: FArrayBox, geom: Geometry,
                    time: float, rank: int) -> None:
    """Run one fab's physical boundary fill as a labeled launch.

    BC fills touch only the ghost frame, so the launch is charged the
    grown-minus-valid point count.
    """
    ghost_pts = fab.grown_box().num_pts() - fab.box.num_pts()
    parallel_for("BC_fill", lambda: bc_fill(fab, geom, time),
                 ghost_pts, LaunchSpec(kernel_class="fillpatch", rank=rank))


class FillPatchOp:
    """Nowait/finish split of FillPatchSingleLevel / FillPatchTwoLevels.

    The eager functions below run all phases back to back; the runtime's
    task graph instead posts the communication halves early and runs
    interior kernels in the gap.  Phases, in dependency order:

    - :meth:`post_fillboundary` — pack the same-level ghost exchange
      (``FillBoundary_nowait``); pure communication, reads valid cells.
    - :meth:`post_coords` — for the curvilinear two-level fill, the
      *global* ParallelCopy gathering coarse coordinates into a ghosted
      temporary (the CRoCCo 2.0 bottleneck the paper isolates).
    - :meth:`finish_fillboundary` — unpack into same-level ghosts
      (``FillBoundary_finish``).
    - :meth:`interp_fab` — interpolate coarse data into one fine fab's
      coarse/fine-interface ghosts (two-level only; needs the posted
      coordinates and the up-to-date coarse level).
    - :meth:`apply_bc` — physical boundary conditions.

    Running the phases immediately in this order is bit-identical to the
    eager functions.
    """

    def __init__(
        self,
        fine: MultiFab,
        geom_fine: Geometry,
        bc_fill: Optional[BCFill] = None,
        time: float = 0.0,
        crse: Optional[MultiFab] = None,
        geom_crse: Optional[Geometry] = None,
        ratio: Optional[IntVectLike] = None,
        interp: Optional[Interpolator] = None,
        crse_coords: Optional[MultiFab] = None,
        fine_coords: Optional[MultiFab] = None,
    ) -> None:
        self.fine = fine
        self.geom_fine = geom_fine
        self.bc_fill = bc_fill
        self.time = time
        self.crse = crse
        self.geom_crse = geom_crse
        self.interp = interp
        self.crse_coords = crse_coords
        self.fine_coords = fine_coords
        self.two_level = crse is not None
        self._r = (IntVect.coerce(ratio, fine.dim)
                   if ratio is not None else None)
        self._fb = None
        self._coords_tmp: Optional[MultiFab] = None

    @property
    def needs_coords(self) -> bool:
        return self.two_level and self.interp is not None and self.interp.needs_coords

    def post_fillboundary(self) -> None:
        """FillBoundary_nowait: pack the same-level ghost exchange."""
        from repro.amr.boundary import fill_boundary_nowait

        self._fb = fill_boundary_nowait(self.fine, self.geom_fine)

    def post_coords(self) -> None:
        """The curvilinear interpolator's ParallelCopy: gather the coarse
        coordinates into a temporary MultiFab with enough extra ghost
        cells to cover every interpolation stencil.  This is global
        communication (any rank's coordinates may be needed anywhere)."""
        if not self.needs_coords:
            return
        crse = self.crse
        if self.crse_coords is None or self.fine_coords is None:
            raise ValueError("curvilinear interpolation requires coordinate MultiFabs")
        extra = crse.ngrow + IntVect.filled(crse.dim, self.interp.radius + 1)
        coords_tmp = MultiFab(crse.ba, crse.dm, self.crse_coords.ncomp,
                              extra, crse.comm)
        coords_tmp.parallel_copy(self.crse_coords, fill_ghosts=True)
        self._coords_tmp = coords_tmp

    def finish_fillboundary(self) -> None:
        """FillBoundary_finish: unpack buffers into same-level ghosts."""
        self._fb.finish()

    def interp_fab(self, i: int) -> None:
        """Interpolate coarse/fine-interface ghosts of fine fab ``i``."""
        if not self.two_level:
            return
        if self.needs_coords and self._coords_tmp is None:
            raise RuntimeError("post_coords() must run before interp_fab()")
        fab = self.fine.fab(i)
        grown = fab.grown_box().intersect(self.geom_fine.domain)
        for piece in self.fine.ba.complement_in(grown):
            _interp_piece(
                fab, piece, self.crse, self._r, self.interp,
                self._coords_tmp,
                self.fine_coords.fab(i) if self.fine_coords is not None else None,
                self.fine.comm, self.fine.dm[i],
            )

    def apply_bc(self, i: Optional[int] = None) -> None:
        """Physical boundary fill for one fab (or, by default, all)."""
        if self.bc_fill is None:
            return
        if i is not None:
            _bc_fill_launch(self.bc_fill, self.fine.fab(i), self.geom_fine,
                            self.time, self.fine.dm[i])
            return
        for j, fab in self.fine:
            _bc_fill_launch(self.bc_fill, fab, self.geom_fine, self.time,
                            self.fine.dm[j])


def fill_patch_single_level(
    mf: MultiFab,
    geom: Geometry,
    bc_fill: Optional[BCFill] = None,
    time: float = 0.0,
    profiler=None,
) -> None:
    """FillBoundary plus physical boundary conditions for one level."""
    op = FillPatchOp(mf, geom, bc_fill, time)
    with _region(profiler, "FillBoundary"):
        op.post_fillboundary()
        op.finish_fillboundary()
    op.apply_bc()


def fill_patch_two_levels(
    fine: MultiFab,
    crse: MultiFab,
    geom_fine: Geometry,
    geom_crse: Geometry,
    ratio: IntVectLike,
    interp: Interpolator,
    crse_coords: Optional[MultiFab] = None,
    fine_coords: Optional[MultiFab] = None,
    bc_fill: Optional[BCFill] = None,
    time: float = 0.0,
    profiler=None,
) -> None:
    """Fill ``fine``'s ghost cells from fine neighbors and coarse data."""
    op = FillPatchOp(fine, geom_fine, bc_fill, time, crse=crse,
                     geom_crse=geom_crse, ratio=ratio, interp=interp,
                     crse_coords=crse_coords, fine_coords=fine_coords)
    with _region(profiler, "FillBoundary"):
        op.post_fillboundary()
        op.finish_fillboundary()
    with _region(profiler, "ParallelCopy"):
        op.post_coords()
        for i, _ in fine:
            op.interp_fab(i)
    op.apply_bc()


def fill_coarse_patch(
    fine: MultiFab,
    crse: MultiFab,
    geom_fine: Geometry,
    ratio: IntVectLike,
    interp: Interpolator,
    crse_coords: Optional[MultiFab] = None,
    fine_coords: Optional[MultiFab] = None,
    bc_fill: Optional[BCFill] = None,
    time: float = 0.0,
    profiler=None,
) -> None:
    """Fill every *valid* cell of ``fine`` by interpolation from ``crse``.

    Used when regrid creates patches in previously-uncovered regions.
    """
    r = IntVect.coerce(ratio, fine.dim)
    with _region(profiler, "ParallelCopy"):
        coords_tmp = None
        if interp.needs_coords:
            if crse_coords is None or fine_coords is None:
                raise ValueError("curvilinear interpolation requires coordinate MultiFabs")
            extra = crse.ngrow + IntVect.filled(crse.dim, interp.radius + 1)
            coords_tmp = MultiFab(crse.ba, crse.dm, crse_coords.ncomp, extra, crse.comm)
            coords_tmp.parallel_copy(crse_coords, fill_ghosts=True)
        for i, fab in fine:
            _interp_piece(
                fab, fab.box, crse, r, interp, coords_tmp,
                fine_coords.fab(i) if fine_coords is not None else None,
                fine.comm, fine.dm[i],
            )
    if bc_fill is not None:
        for i, fab in fine:
            _bc_fill_launch(bc_fill, fab, geom_fine, time, fine.dm[i])


def _interp_piece(
    fab: FArrayBox,
    piece: Box,
    crse: MultiFab,
    ratio: IntVect,
    interp: Interpolator,
    coords_tmp: Optional[MultiFab],
    fine_coords_fab: Optional[FArrayBox],
    comm,
    dst_rank: int,
) -> None:
    """Interpolate coarse data onto one fine region and store it in ``fab``."""
    cregion = interp.coarse_region(piece, ratio)
    ctmp = _gather_coarse(crse, cregion, comm, dst_rank)
    ccoords = None
    if coords_tmp is not None:
        # stencil coordinates: one extra cell so edge weights are defined
        ccoords = _gather_coarse(coords_tmp, cregion.grow(1), comm, dst_rank,
                                 use_ghosts=True)
    vals = parallel_for(
        f"Interp_{interp.kernel_label}",
        lambda: interp.interp(ctmp, piece, ratio, ccoords, fine_coords_fab),
        piece.num_pts(),
        LaunchSpec(kernel_class="interp", rank=dst_rank))
    nc = min(fab.ncomp, vals.shape[0])
    fab.view(piece, slice(0, nc))[...] = vals[:nc]


def _gather_coarse(src: MultiFab, region: Box, comm, dst_rank: int,
                   use_ghosts: bool = False) -> FArrayBox:
    """Collect ``region`` of coarse data into a single temporary fab.

    Cells not covered by any source box — stencil cells beyond the
    physical boundary, or (when proper nesting is marginal) beyond the
    coarse level's coverage — are filled by nearest-covered extension so
    interpolation stencils stay defined; the physical boundary fill
    afterwards overrides anything that matters.
    """
    tmp = FArrayBox(region, src.ncomp)
    tmp.data.fill(np.nan)

    def gather() -> bool:
        found = False
        for j, sfab in src:
            avail = sfab.grown_box() if use_ghosts else sfab.box
            overlap = avail.intersect(region)
            if overlap.is_empty():
                continue
            nbytes = tmp.copy_from(sfab, overlap)
            comm.send_bytes(src.dm[j], dst_rank, nbytes, "parallelcopy")
            found = True
        return found

    found = parallel_for(
        "PC_gather", gather, region.num_pts(),
        LaunchSpec(kernel_class="fillpatch", rank=dst_rank))
    if not found:
        raise ValueError(f"no coarse data available for region {region}")
    _nearest_fill(tmp.data)
    return tmp


def _nearest_fill(data: np.ndarray) -> None:
    """Replace NaNs by sweeping each axis with forward/backward fill.

    After the sweeps every cell holds the value of a nearby covered cell
    (exact nearest along the first axis that reaches one).
    """
    if not np.isnan(data).any():
        return
    for axis in range(1, data.ndim):
        n = data.shape[axis]
        # forward fill
        for k in range(1, n):
            dst = [slice(None)] * data.ndim
            src = [slice(None)] * data.ndim
            dst[axis] = slice(k, k + 1)
            src[axis] = slice(k - 1, k)
            d = data[tuple(dst)]
            mask = np.isnan(d)
            if mask.any():
                np.copyto(d, data[tuple(src)], where=mask)
        # backward fill
        for k in range(n - 2, -1, -1):
            dst = [slice(None)] * data.ndim
            src = [slice(None)] * data.ndim
            dst[axis] = slice(k, k + 1)
            src[axis] = slice(k + 1, k + 2)
            d = data[tuple(dst)]
            mask = np.isnan(d)
            if mask.any():
                np.copyto(d, data[tuple(src)], where=mask)
        if not np.isnan(data).any():
            return
    if np.isnan(data).any():
        raise ValueError("coarse gather region entirely uncovered")
