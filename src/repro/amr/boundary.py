"""FillBoundary: ghost-cell exchange between same-level patches.

This is the point-to-point part of AMReX's FillPatch machinery: every
patch's ghost cells that are covered by another patch's valid region (or by
a periodic image of one) are copied over, and each copy is recorded in the
communicator's ledger as a ``fillboundary`` message between the owning
ranks.  Ghost cells not covered by any patch (physical-boundary or
coarse/fine-interface ghosts) are left untouched — those are filled by
``BC_Fill`` and by interpolation in FillPatchTwoLevels respectively.

The exchange is split MPI-style into a *nowait* half that packs send
buffers from valid data (and logs the messages) and a *finish* half that
unpacks them into ghost cells — mirroring ``FillBoundary_nowait`` /
``FillBoundary_finish`` in AMReX, which is what lets the runtime overlap
the in-flight exchange with interior computation.  The classic eager
:func:`fill_boundary` is the two halves run back to back; because packing
reads only valid cells and unpacking writes only ghost cells, the split
is bit-identical to the old direct-copy loop.
"""

from __future__ import annotations

from itertools import groupby
from typing import List, Optional, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.geometry import Geometry
from repro.amr.multifab import MultiFab
from repro.backend import LaunchSpec, parallel_for


class FillBoundaryHandle:
    """An in-flight ghost exchange: posted (packed) but not yet unpacked.

    Created by :func:`fill_boundary_nowait`; call :meth:`finish` to unpack
    the buffers into ghost cells.  Finishing twice is a no-op.
    """

    def __init__(self, mf: MultiFab, geom: Optional[Geometry] = None) -> None:
        self.mf = mf
        self.geom = geom
        #: (dst box id, dst region, packed source values) in unpack order
        self._packets: List[Tuple[int, Box, np.ndarray]] = []
        self._done = False
        self._pack()

    def _pack(self) -> None:
        """Build the exchange plan and snapshot every source region.

        Plan order matches the historical eager loop exactly (direct
        overlaps first, then periodic images, per destination fab) so
        unpacking reproduces the same sequence of ghost writes.
        """
        mf, geom = self.mf, self.geom
        if mf.ngrow.max() == 0:
            return
        ba = mf.ba
        for i, dst in mf:
            grown = dst.grown_box()
            # copy plan for this destination fab: (src fab, src region,
            # dst region), direct overlaps first, then periodic images
            plan: List[Tuple[int, Box, Box]] = []
            for j, overlap in ba.intersections(grown):
                if j == i:
                    continue
                plan.append((j, overlap, overlap))
            if geom is not None and any(geom.periodic):
                for shift in geom.periodic_shifts(grown):
                    shifted = grown.shift(shift)
                    for j, overlap in ba.intersections(shifted):
                        dst_region = overlap.shift(-shift)
                        # skip the trivial self-overlap of the valid region
                        if dst.box.contains(dst_region):
                            continue
                        plan.append((j, overlap, dst_region))
            if not plan:
                continue

            def pack(plan=plan, i=i):
                for j, src_region, dst_region in plan:
                    buf = np.array(mf.fab(j).view(src_region), copy=True)
                    self._packets.append((i, dst_region, buf))
                    mf.comm.send_bytes(mf.dm[j], mf.dm[i], buf.nbytes,
                                       "fillboundary")

            parallel_for("FB_pack", pack,
                         sum(r.num_pts() for _, r, _ in plan),
                         LaunchSpec(kernel_class="fillpatch",
                                    rank=mf.dm[i]))

    @property
    def nbytes(self) -> int:
        """Bytes currently in flight (0 once finished)."""
        return sum(buf.nbytes for _, _, buf in self._packets)

    @property
    def npackets(self) -> int:
        return len(self._packets)

    def finish(self) -> None:
        """Unpack every buffered message into its ghost region."""
        if self._done:
            return
        # packets are contiguous per destination fab (pack order), so one
        # FB_unpack launch per fab preserves the exact write sequence
        for i, group in groupby(self._packets, key=lambda p: p[0]):
            packets = list(group)

            def unpack(packets=packets):
                for i, region, buf in packets:
                    self.mf.fab(i).view(region)[...] = buf

            parallel_for("FB_unpack", unpack,
                         sum(r.num_pts() for _, r, _ in packets),
                         LaunchSpec(kernel_class="fillpatch",
                                    rank=self.mf.dm[i]))
        self._packets.clear()
        self._done = True


def fill_boundary_nowait(mf: MultiFab,
                         geom: Optional[Geometry] = None) -> FillBoundaryHandle:
    """Post the ghost exchange for ``mf``: pack buffers, log messages.

    Returns a handle whose :meth:`~FillBoundaryHandle.finish` writes the
    ghost cells.  Between post and finish the valid data of ``mf`` may be
    read freely, and unrelated computation may write *other* MultiFabs —
    the gap the runtime fills with interior kernels.
    """
    return FillBoundaryHandle(mf, geom)


def fill_boundary(mf: MultiFab, geom: Optional[Geometry] = None) -> None:
    """Fill ghost cells of every fab in ``mf`` from neighboring valid data.

    ``geom`` supplies periodicity; without it only direct overlaps are
    used.  Equivalent to posting the exchange and finishing immediately.
    """
    fill_boundary_nowait(mf, geom).finish()


def boundary_regions(mf: MultiFab, i: int):
    """The ghost sub-boxes of fab ``i`` not covered by any same-level patch.

    These are the cells that physical boundary conditions (BC_Fill) or
    coarse-to-fine interpolation must supply.
    """
    dst = mf.fab(i)
    return mf.ba.complement_in(dst.grown_box())
