"""FillBoundary: ghost-cell exchange between same-level patches.

This is the point-to-point part of AMReX's FillPatch machinery: every
patch's ghost cells that are covered by another patch's valid region (or by
a periodic image of one) are copied over, and each copy is recorded in the
communicator's ledger as a ``fillboundary`` message between the owning
ranks.  Ghost cells not covered by any patch (physical-boundary or
coarse/fine-interface ghosts) are left untouched — those are filled by
``BC_Fill`` and by interpolation in FillPatchTwoLevels respectively.
"""

from __future__ import annotations

from typing import Optional

from repro.amr.geometry import Geometry
from repro.amr.multifab import MultiFab


def fill_boundary(mf: MultiFab, geom: Optional[Geometry] = None) -> None:
    """Fill ghost cells of every fab in ``mf`` from neighboring valid data.

    ``geom`` supplies periodicity; without it only direct overlaps are used.
    """
    if mf.ngrow.max() == 0:
        return
    ba = mf.ba
    for i, dst in mf:
        grown = dst.grown_box()
        # direct neighbors (disjoint BoxArray => overlaps lie in ghost region)
        for j, overlap in ba.intersections(grown):
            if j == i:
                continue
            nbytes = dst.copy_from(mf.fab(j), overlap)
            mf.comm.send_bytes(mf.dm[j], mf.dm[i], nbytes, "fillboundary")
        # periodic images
        if geom is not None and any(geom.periodic):
            for shift in geom.periodic_shifts(grown):
                shifted = grown.shift(shift)
                for j, overlap in ba.intersections(shifted):
                    dst_region = overlap.shift(-shift)
                    # skip the trivial self-overlap of the valid region
                    if dst.box.contains(dst_region):
                        continue
                    nbytes = dst.copy_shifted_from(mf.fab(j), dst_region, shift)
                    mf.comm.send_bytes(mf.dm[j], mf.dm[i], nbytes, "fillboundary")


def boundary_regions(mf: MultiFab, i: int):
    """The ghost sub-boxes of fab ``i`` not covered by any same-level patch.

    These are the cells that physical boundary conditions (BC_Fill) or
    coarse-to-fine interpolation must supply.
    """
    dst = mf.fab(i)
    return mf.ba.complement_in(dst.grown_box())
