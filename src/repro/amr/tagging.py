"""Error estimation: tagging cells for refinement.

Implements the regrid criteria discussed in the paper (Sec. II-B, III-C):

- ``density_gradient`` — tag where the local undivided gradient of density
  exceeds a threshold (classic shock indicator, |grad rho|),
- ``momentum_gradient`` — same on momentum components, |grad (rho u_i)|,
- ``value_threshold`` — tag where a component exceeds an absolute value
  (useful for turbulence-resolving refinement away from shocks, which the
  paper notes WENO-SYMBO permits).

Tags are per-cell boolean arrays over each patch's valid region; the
clustering stage (:mod:`repro.amr.cluster`) turns them into boxes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.amr.multifab import MultiFab
from repro.backend import LaunchSpec, parallel_for


def undivided_gradient_magnitude(arr: np.ndarray) -> np.ndarray:
    """Max over directions of |one-sided differences| of a (nx[,ny[,nz]]) array.

    Undivided (no dx) so the threshold is resolution-independent per level,
    matching common AMReX tagging practice.
    """
    out = np.zeros_like(arr)
    for d in range(arr.ndim):
        diff = np.abs(np.diff(arr, axis=d))
        # forward difference applies to cells [0, n-2]
        sl_lo = [slice(None)] * arr.ndim
        sl_lo[d] = slice(0, arr.shape[d] - 1)
        np.maximum(out[tuple(sl_lo)], diff, out=out[tuple(sl_lo)])
        # backward difference applies to cells [1, n-1]
        sl_hi = [slice(None)] * arr.ndim
        sl_hi[d] = slice(1, arr.shape[d])
        np.maximum(out[tuple(sl_hi)], diff, out=out[tuple(sl_hi)])
    return out


def _gradient_on_valid(fab, comp: int) -> np.ndarray:
    """Gradient magnitude on the valid region, using one ghost layer if present.

    Without ghost data a jump sitting exactly on a patch seam is invisible
    to both neighboring patches; callers should FillBoundary first.
    """
    if fab.ngrow.min() >= 1:
        grown = fab.view(fab.box.grow(1))[comp]
        g = undivided_gradient_magnitude(grown)
        inner = tuple(slice(1, s - 1) for s in g.shape)
        return g[inner]
    return undivided_gradient_magnitude(fab.valid()[comp])


def _tag_launch(name: str, mf: MultiFab, i: int, fn) -> np.ndarray:
    """Run one fab's tagging criterion as a labeled launch."""
    return parallel_for(name, fn, mf.ba[i].num_pts(),
                        LaunchSpec(kernel_class="tagging", rank=mf.dm[i]))


def tag_density_gradient(mf: MultiFab, rho_comp: int, threshold: float) -> Dict[int, np.ndarray]:
    """Boolean tags per box index, using |grad rho| > threshold."""
    return {i: _tag_launch(
                "Tag_gradient", mf, i,
                lambda fab=fab: _gradient_on_valid(fab, rho_comp) > threshold)
            for i, fab in mf}


def tag_momentum_gradient(mf: MultiFab, mom_comps: Tuple[int, ...],
                          threshold: float) -> Dict[int, np.ndarray]:
    """Boolean tags using max over momentum components of the gradient."""
    tags = {}
    for i, fab in mf:
        def criterion(fab=fab):
            grad = np.zeros(fab.box.shape())
            for c in mom_comps:
                np.maximum(grad, _gradient_on_valid(fab, c), out=grad)
            return grad > threshold

        tags[i] = _tag_launch("Tag_gradient", mf, i, criterion)
    return tags


def tag_value_threshold(mf: MultiFab, comp: int, threshold: float) -> Dict[int, np.ndarray]:
    """Boolean tags where |value| exceeds a threshold."""
    return {i: _tag_launch(
                "Tag_value", mf, i,
                lambda fab=fab: np.abs(fab.valid()[comp]) > threshold)
            for i, fab in mf}


def tagged_cells(mf: MultiFab, tags: Dict[int, np.ndarray]) -> np.ndarray:
    """Collect global (n, dim) integer indices of all tagged cells."""
    pieces: List[np.ndarray] = []
    for i, mask in tags.items():
        if not mask.any():
            continue
        idx = np.argwhere(mask)
        idx += np.array(mf.ba[i].lo.tup(), dtype=idx.dtype)
        pieces.append(idx)
    if not pieces:
        return np.empty((0, mf.dim), dtype=np.int64)
    return np.concatenate(pieces, axis=0)
