"""Assignment of boxes to MPI ranks.

``DistributionMapping`` mirrors ``amrex::DistributionMapping``: given a
:class:`~repro.amr.boxarray.BoxArray` and a rank count, produce the
box -> rank ownership map.  Strategies:

- ``sfc`` (default, as in the paper): order boxes along the Z-Morton
  space-filling curve, then split the ordered sequence into contiguous
  per-rank chunks of nearly equal weight (cell count).
- ``knapsack``: greedy longest-processing-time assignment minimizing the
  maximum per-rank weight, ignoring locality.
- ``roundrobin``: box i -> rank i % nranks.

AMReX load balances each AMR level independently, in sequence; so does
:class:`~repro.amr.amrcore.AmrCore`.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.boxarray import BoxArray
from repro.amr.morton import morton_order

STRATEGIES = ("sfc", "knapsack", "roundrobin")


class DistributionMapping:
    """Ownership map from box index to rank."""

    def __init__(self, ranks: Sequence[int], nranks: int) -> None:
        self._ranks = tuple(int(r) for r in ranks)
        self.nranks = int(nranks)
        if any(not 0 <= r < nranks for r in self._ranks):
            raise ValueError("rank out of range in DistributionMapping")

    @classmethod
    def make(
        cls,
        ba: BoxArray,
        nranks: int,
        strategy: str = "sfc",
        weights: Optional[Sequence[float]] = None,
    ) -> "DistributionMapping":
        """Build a distribution for ``ba`` over ``nranks`` ranks."""
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; options: {STRATEGIES}")
        w = (
            np.array([b.num_pts() for b in ba], dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if len(w) != len(ba):
            raise ValueError("weights length must match BoxArray length")
        if strategy == "roundrobin":
            ranks = [i % nranks for i in range(len(ba))]
        elif strategy == "knapsack":
            ranks = _knapsack(w, nranks)
        else:
            ranks = _sfc(ba, w, nranks)
        return cls(ranks, nranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def __getitem__(self, i: int) -> int:
        return self._ranks[i]

    def __iter__(self):
        return iter(self._ranks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributionMapping):
            return NotImplemented
        return self._ranks == other._ranks and self.nranks == other.nranks

    def __repr__(self) -> str:
        return f"DistributionMapping(nboxes={len(self)}, nranks={self.nranks})"

    def ranks(self) -> Tuple[int, ...]:
        return self._ranks

    def boxes_on(self, rank: int) -> List[int]:
        """Box indices owned by ``rank``."""
        return [i for i, r in enumerate(self._ranks) if r == rank]

    def load_per_rank(self, ba: BoxArray) -> np.ndarray:
        """Total cell count assigned to each rank."""
        load = np.zeros(self.nranks, dtype=np.int64)
        for i, r in enumerate(self._ranks):
            load[r] += ba[i].num_pts()
        return load

    def imbalance(self, ba: BoxArray) -> float:
        """max/mean load ratio (1.0 = perfectly balanced).

        Ranks with no boxes still count toward the mean, matching the usual
        parallel-efficiency definition.
        """
        load = self.load_per_rank(ba)
        mean = load.sum() / self.nranks
        if mean == 0:
            return 1.0
        return float(load.max() / mean)


def _sfc(ba: BoxArray, weights: np.ndarray, nranks: int) -> List[int]:
    """Space-filling-curve distribution: Morton-sort, then greedy chunking."""
    if len(ba) == 0:
        return []
    centers = ba.centers()
    centers = centers - centers.min(axis=0)  # shift non-negative for Morton
    order = morton_order(centers)
    total = float(weights.sum())
    target = total / nranks
    ranks = [0] * len(ba)
    rank = 0
    acc = 0.0
    remaining = total
    for pos, idx in enumerate(order):
        ranks[idx] = rank
        acc += float(weights[idx])
        remaining -= float(weights[idx])
        # advance rank when this one has its fair share of what was left,
        # but never strand later boxes without ranks to go around
        boxes_left = len(order) - pos - 1
        if rank < nranks - 1 and acc >= target and boxes_left >= 1:
            rank += 1
            acc = 0.0
            target = remaining / (nranks - rank)
    return ranks


def _knapsack(weights: np.ndarray, nranks: int) -> List[int]:
    """Greedy LPT knapsack: heaviest box to the lightest rank."""
    ranks = [0] * len(weights)
    heap: List[Tuple[float, int]] = [(0.0, r) for r in range(nranks)]
    heapq.heapify(heap)
    for idx in np.argsort(-weights, kind="stable"):
        load, r = heapq.heappop(heap)
        ranks[int(idx)] = r
        heapq.heappush(heap, (load + float(weights[idx]), r))
    return ranks
