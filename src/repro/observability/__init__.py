"""Unified observability: one event model over the three accounting silos.

The paper's evaluation is an observability exercise — TinyProfiler region
decompositions (Figs. 6-7), kernel-launch accounting for the roofline
(Figs. 3-4), and message-volume breakdowns of FillPatch.  This package
unifies the collectors behind one event model:

- :class:`~repro.observability.tracer.Tracer` — nested spans carrying wall
  *or* charged (simulated-Summit) time on rank/stream tracks, exported as
  Chrome trace-event JSON (loadable in Perfetto / chrome://tracing);
- :class:`~repro.observability.metrics.MetricsRegistry` — counters, gauges
  and histograms sampled once per timestep into a JSONL time series;
- :mod:`~repro.observability.adapters` — listeners that let the existing
  silos (``TinyProfiler``, ``CommLedger``, the device launch path) emit
  into the tracer/registry without changing their public APIs;
- :class:`~repro.observability.recorder.RunRecorder` — wires a run to the
  tracer/registry and writes the artifacts (``trace.json``,
  ``metrics.jsonl``);
- :mod:`~repro.observability.report` — the run-report CLI
  (``python -m repro.report <run_dir>``).
"""

from repro.observability.adapters import (
    DeviceMetricsAdapter,
    LedgerMetricsAdapter,
    ProfilerTraceAdapter,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import RunRecorder
from repro.observability.tracer import (
    Tracer,
    load_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "Tracer",
    "MetricsRegistry",
    "RunRecorder",
    "ProfilerTraceAdapter",
    "LedgerMetricsAdapter",
    "DeviceMetricsAdapter",
    "load_chrome_trace",
    "validate_chrome_trace",
]
