"""Critical path of an executed stage DAG.

The critical path is the longest dependency chain through the stage
graph, weighted by each task's *measured* span (serialize + queue wait
+ execute for offloaded tasks — the full latency a dependent actually
waits for; execute time for inline ones).  Its length bounds how fast
any executor can finish the stage no matter how many workers it has:
``realized parallelism = total busy time / critical-path time`` tells
how much of the DAG's theoretical concurrency a schedule achieved.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.observability.perfscope.lifecycle import StageTrace, TaskSpan


def span_weight(span: TaskSpan) -> float:
    """The latency a dependent waits on this task: lifecycle-inclusive."""
    return span.serialize_s + span.queue_wait_s + span.execute_s \
        + span.result_s + span.merge_s


def critical_path(trace: StageTrace) -> Tuple[float, List[TaskSpan]]:
    """(seconds, spans on the path) of one stage's longest weighted chain.

    Dynamic programming over the DAG in sid order — edges only point
    backwards (the graph builder appends tasks after their
    dependencies), so a single forward sweep suffices.
    """
    spans = trace.spans
    if not spans:
        return 0.0, []
    base = spans[0].sid
    best: Dict[int, float] = {}      # sid -> chain length ending here
    prev: Dict[int, int] = {}        # sid -> predecessor on that chain
    for s in spans:
        w = span_weight(s)
        longest, arg = 0.0, None
        for d in s.deps:
            got = best.get(d, 0.0)
            if got > longest:
                longest, arg = got, d
        best[s.sid] = longest + w
        if arg is not None:
            prev[s.sid] = arg
    end = max(best, key=best.get)
    path: List[TaskSpan] = []
    sid = end
    while True:
        path.append(spans[sid - base])
        if sid not in prev:
            break
        sid = prev[sid]
    path.reverse()
    return best[end], path


def critical_path_tasks(traces: Sequence[StageTrace]) -> Dict[str, float]:
    """Aggregate critical-path membership across stages: name -> seconds.

    The per-name seconds are the weighted span contributions of every
    appearance on some stage's critical path — the tasks to shrink
    first when attacking the makespan.
    """
    out: Dict[str, float] = {}
    for trace in traces:
        _, path = critical_path(trace)
        for s in path:
            out[s.name] = out.get(s.name, 0.0) + span_weight(s)
    return out
