"""perfscope: task-lifecycle tracing and critical-path attribution.

The runtime (PR 2) can *run* a stage DAG on pool workers, but nothing
says where a slow parallel run loses its time — queue wait, pickling,
SharedMemory churn, worker idle gaps, or the DAG's own critical path.
This package instruments every task's full lifecycle across process
boundaries::

    created -> enqueued -> pickled [bytes + time] -> dispatched
            -> started-on-worker -> finished -> result-transferred
            -> merged

Span ids travel with the task payload into the worker and are
reconciled in the driver; worker timestamps share the driver's
``CLOCK_MONOTONIC`` epoch (fork, POSIX), so one timeline covers all
processes.  From the reconciled spans perfscope computes, per step:

- the **critical path** of each executed stage DAG (longest dependency
  chain weighted by measured task time) and the **realized
  parallelism** (total busy time / critical-path time);
- an **overhead breakdown** — serialize / queue-wait / execute /
  result / merge / idle — per kernel class, tiled against the run's
  worker-second capacity (lanes x makespan) so the attribution is a
  checkable identity, not a tautology;
- **per-lane idle-gap timelines** (driver = lane 0, pool workers
  1..N) and a per-box cost histogram feeding measured-cost load
  balancing (ROADMAP item 4).

Results surface as ``perf.*`` recorder gauges, the run report's
"bottleneck" section, lifecycle sub-slices on the Chrome-trace worker
tracks, and ``benchmarks/bench_perfscope.py`` rows in
BENCH_results.json, gated by ``tools/bench_gate.py``.
"""

from repro.observability.perfscope.attribution import StepPerf, attribute_stage
from repro.observability.perfscope.critpath import critical_path
from repro.observability.perfscope.lifecycle import (
    PerfScope,
    StageTrace,
    TaskSpan,
    kernel_class,
)

__all__ = [
    "PerfScope",
    "StageTrace",
    "TaskSpan",
    "StepPerf",
    "attribute_stage",
    "critical_path",
    "kernel_class",
]
