"""Task-lifecycle spans and the PerfScope coordinator.

A :class:`TaskSpan` records one task's lifecycle timestamps, all in
seconds relative to the owning stage's ``t0_abs`` (a ``perf_counter``
reading).  Worker processes are forked from the driver and
``perf_counter`` reads ``CLOCK_MONOTONIC`` on POSIX, so timestamps
measured inside a worker live on the same clock as the driver's and
reconcile by simple subtraction; any negative interval that survives
(clock trouble, interrupted writes) is clamped and counted in
``reconcile_errors`` rather than poisoning the attribution.

The :class:`PerfScope` object is the driver-side coordinator: the
scheduler opens one :class:`StageTrace` per executed graph and feeds it
lifecycle events; at end of step the engine asks the scope to finalize
the stage traces into a :class:`~repro.observability.perfscope.attribution.StepPerf`.
PerfScope also meters its *own* bookkeeping cost (``overhead_s``) so
the attribution overhead is itself measured and reported.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: recognised lifecycle phases, in order
PHASES = ("created", "enqueued", "pickled", "dispatched", "started",
          "finished", "collected", "merged")

_BOX_RE = re.compile(r"\(L(\d+),b(\d+)\)")


def kernel_class(name: str) -> str:
    """The kernel class of a task name: its prefix before ``(``.

    ``Box(L1,b3)`` -> ``Box``, ``FB_nowait(L0)`` -> ``FB_nowait``,
    ``AverageDown(L1->L0)`` -> ``AverageDown``.
    """
    return name.split("(", 1)[0]


def box_of(name: str) -> Optional[Tuple[int, int]]:
    """The (level, box) a per-box task touches, or None."""
    m = _BOX_RE.search(name)
    return (int(m.group(1)), int(m.group(2))) if m else None


@dataclass
class TaskSpan:
    """One task's reconciled lifecycle (times relative to stage t0)."""

    sid: int
    name: str
    kind: str
    kclass: str
    deps: Tuple[int, ...] = ()
    lane: int = 0                 # 0 = driver, 1..N = pool workers
    offloaded: bool = False
    t_enqueued: Optional[float] = None
    t_dispatched: Optional[float] = None
    t_started: Optional[float] = None
    t_finished: Optional[float] = None
    t_collected: Optional[float] = None
    t_merged: Optional[float] = None
    serialize_s: float = 0.0
    deserialize_s: float = 0.0
    pickle_bytes: int = 0

    @property
    def execute_s(self) -> float:
        if self.t_started is None or self.t_finished is None:
            return 0.0
        return max(0.0, self.t_finished - self.t_started)

    @property
    def queue_wait_s(self) -> float:
        """Dispatch-to-start gap (offloaded tasks only)."""
        if not self.offloaded or self.t_dispatched is None \
                or self.t_started is None:
            return 0.0
        return max(0.0, self.t_started - self.t_dispatched)

    @property
    def result_s(self) -> float:
        """Worker-finish to driver-collection latency."""
        if not self.offloaded or self.t_finished is None \
                or self.t_collected is None:
            return 0.0
        return max(0.0, self.t_collected - self.t_finished)

    @property
    def merge_s(self) -> float:
        """Driver time spent folding the completion into the step."""
        if self.t_collected is None or self.t_merged is None:
            return 0.0
        return max(0.0, self.t_merged - self.t_collected)


class StageTrace:
    """Lifecycle spans of one executed stage graph."""

    def __init__(self, graph, nlanes: int, sid_base: int = 0) -> None:
        self.t0_abs = time.perf_counter()
        self.nlanes = max(1, int(nlanes))
        self.makespan_s = 0.0
        self.reconcile_errors = 0
        self.spans: List[TaskSpan] = [
            TaskSpan(sid=sid_base + t.tid, name=t.name, kind=t.kind,
                     kclass=kernel_class(t.name),
                     deps=tuple(sid_base + d for d in t.deps))
            for t in graph.tasks
        ]
        self._sid_base = sid_base

    # -- event hooks (tid = task id within this stage's graph) -------------
    def sid(self, tid: int) -> int:
        return self._sid_base + tid

    def rel(self, t_abs: float) -> float:
        return t_abs - self.t0_abs

    def enqueued(self, tid: int, t: float) -> None:
        self.spans[tid].t_enqueued = t

    def ran_inline(self, tid: int, t0: float, dur: float) -> None:
        s = self.spans[tid]
        s.lane = 0
        s.t_started = t0
        s.t_finished = t0 + dur
        # an inline result is "collected" the moment it finishes; the
        # merge timestamp then isolates the dependent-release cost
        s.t_collected = s.t_finished

    def offloaded_done(self, tid: int, lane: int, dur: float,
                       lifecycle: Dict[str, float],
                       t_collected: float) -> None:
        """Reconcile a worker-run task's lifecycle in the driver.

        ``lifecycle`` carries absolute ``perf_counter`` timestamps from
        the executor/worker plus serialize metering; the echoed span id
        (if present) must match — a mismatch is counted, not trusted.
        """
        s = self.spans[tid]
        echoed = lifecycle.get("sid")
        if echoed is not None and int(echoed) != s.sid:
            self.reconcile_errors += 1
        s.lane = max(0, int(lane))
        s.offloaded = lane > 0
        s.serialize_s = float(lifecycle.get("serialize_s", 0.0))
        s.deserialize_s = float(lifecycle.get("deserialize_s", 0.0))
        s.pickle_bytes = int(lifecycle.get("pickle_bytes", 0))
        t_disp = lifecycle.get("t_dispatched")
        t_start = lifecycle.get("t_started")
        t_finish = lifecycle.get("t_finished")
        s.t_dispatched = self.rel(t_disp) if t_disp is not None else None
        if t_start is not None and t_finish is not None:
            s.t_started = self.rel(t_start)
            s.t_finished = self.rel(t_finish)
        else:  # executor gave only a duration; anchor at collection
            s.t_started = t_collected - dur
            s.t_finished = t_collected
        if s.t_dispatched is not None and s.t_started < s.t_dispatched:
            # reconciliation slack: never let clock jitter create a
            # negative queue wait
            self.reconcile_errors += 1
            s.t_started = s.t_dispatched
            s.t_finished = max(s.t_finished, s.t_started)
        s.t_collected = t_collected

    def merged(self, tid: int, t: float) -> None:
        self.spans[tid].t_merged = t

    def close(self, makespan_s: float) -> None:
        self.makespan_s = makespan_s


class PerfScope:
    """Driver-side collector: stage traces -> per-step attribution."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: measured cost of perfscope's own bookkeeping (seconds)
        self.overhead_s = 0.0
        self._stage_traces: List[StageTrace] = []
        self._next_sid = 0
        self.total = None  # type: Optional[object]  # StepPerf
        self.last_step = None  # type: Optional[object]  # StepPerf

    # -- step/stage lifecycle ---------------------------------------------
    def begin_step(self) -> None:
        self._stage_traces = []

    def begin_stage(self, graph, nlanes: int) -> Optional[StageTrace]:
        if not self.enabled:
            return None
        t0 = time.perf_counter()
        trace = StageTrace(graph, nlanes, sid_base=self._next_sid)
        self._next_sid += len(graph.tasks)
        self._stage_traces.append(trace)
        self.overhead_s += time.perf_counter() - t0
        return trace

    def abort_step(self) -> None:
        """Drop the partially collected step (watchdog rollback)."""
        self._stage_traces = []

    def finalize_step(self):
        """Fold the step's stage traces into a StepPerf; returns it."""
        from repro.observability.perfscope.attribution import StepPerf

        if not self.enabled:
            return None
        t0 = time.perf_counter()
        step = StepPerf.from_traces(self._stage_traces)
        self._stage_traces = []
        if self.total is None:
            self.total = StepPerf()
        self.total.merge(step)
        self.last_step = step
        self.overhead_s += time.perf_counter() - t0
        self.total.overhead_s = self.overhead_s
        step.overhead_s = self.overhead_s
        return step
