"""Overhead attribution: tile worker-second capacity into named buckets.

A stage that ran on ``L`` lanes (driver + pool workers) for ``M``
seconds had ``L x M`` worker-seconds of capacity.  Attribution lays
every reconciled lifecycle interval onto its lane's timeline:

- ``serialize`` — driver-lane pickling of task payloads;
- ``queue-wait`` — dispatch-to-start gaps on the worker lane that ran
  the task (the worker-side cost of a cold pool or a slow feed);
- ``execute`` — the task body, on whichever lane ran it (this is the
  only bucket a perfect executor would have);
- ``result`` — driver-lane gaps covered by an in-flight result (a
  worker finished but the driver hadn't collected it yet);
- ``merge`` — driver-lane folding of completions (counter deltas,
  dependent release);
- ``idle`` — the remaining gaps in each lane's timeline.

Idle is measured from the gaps between intervals, **not** computed as
``capacity - everything else``, so the bucket sum matching capacity is
a real cross-process clock reconciliation check (the bench asserts it
within 5%), not an identity that holds by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.perfscope.critpath import (critical_path,
                                                    critical_path_tasks)
from repro.observability.perfscope.lifecycle import StageTrace, box_of

#: the capacity-tiling buckets, in render order
BUCKETS = ("serialize", "queue_wait", "execute", "result", "merge", "idle")

#: per-kernel-class lifecycle columns (result here is per-task latency)
CLASS_FIELDS = ("count", "serialize_s", "queue_wait_s", "execute_s",
                "result_s", "merge_s")


def _merge_intervals(ivals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    out: List[List[float]] = []
    for lo, hi in sorted(ivals):
        if hi <= lo:
            continue
        if out and lo <= out[-1][1]:
            out[-1][1] = max(out[-1][1], hi)
        else:
            out.append([lo, hi])
    return [(lo, hi) for lo, hi in out]


def _length(ivals: Sequence[Tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in ivals)


def _gaps(ivals: Sequence[Tuple[float, float]],
          span: float) -> List[Tuple[float, float]]:
    """Complement of merged ``ivals`` within [0, span]."""
    out: List[Tuple[float, float]] = []
    cursor = 0.0
    for lo, hi in ivals:
        if lo > cursor:
            out.append((cursor, min(lo, span)))
        cursor = max(cursor, hi)
        if cursor >= span:
            return out
    if cursor < span:
        out.append((cursor, span))
    return out


def _overlap(a: Sequence[Tuple[float, float]],
             b: Sequence[Tuple[float, float]]) -> float:
    """Total length of ``a`` covered by merged ``b``."""
    total = 0.0
    merged = _merge_intervals(list(b))
    for lo, hi in a:
        for mlo, mhi in merged:
            x, y = max(lo, mlo), min(hi, mhi)
            if x < y:
                total += y - x
    return total


class StepPerf:
    """Attribution totals of one step (or a whole run, when merged)."""

    def __init__(self) -> None:
        self.stages = 0
        self.nlanes = 1
        self.tasks = 0
        self.offloaded = 0
        self.makespan_s = 0.0
        self.capacity_s = 0.0
        self.serialize_s = 0.0
        self.queue_wait_s = 0.0
        self.execute_s = 0.0
        self.result_s = 0.0
        self.merge_s = 0.0
        self.idle_s = 0.0
        self.deserialize_s = 0.0
        self.pickle_bytes = 0
        self.critical_path_s = 0.0
        self.reconcile_errors = 0
        self.overhead_s = 0.0
        #: lane index -> idle seconds (the per-worker idle-gap timeline)
        self.lane_idle: Dict[int, float] = {}
        #: task name -> weighted seconds on some stage's critical path
        self.cp_tasks: Dict[str, float] = {}
        #: kernel class -> lifecycle columns (CLASS_FIELDS)
        self.per_class: Dict[str, Dict[str, float]] = {}
        #: (level, box) -> execute seconds (cost-fed load balancing input)
        self.box_costs: Dict[Tuple[int, int], float] = {}

    # -- derived -----------------------------------------------------------
    @property
    def attributed_s(self) -> float:
        return (self.serialize_s + self.queue_wait_s + self.execute_s
                + self.result_s + self.merge_s + self.idle_s)

    @property
    def coverage(self) -> float:
        """Attributed worker-seconds as a fraction of capacity."""
        return self.attributed_s / self.capacity_s if self.capacity_s else 0.0

    @property
    def realized_parallelism(self) -> float:
        """Total busy time over critical-path time (<= nlanes ideally)."""
        if self.critical_path_s <= 0:
            return 0.0
        return self.execute_s / self.critical_path_s

    def bucket(self, name: str) -> float:
        return getattr(self, f"{name}_s")

    # -- accumulation ------------------------------------------------------
    def merge(self, other: "StepPerf") -> "StepPerf":
        self.stages += other.stages
        self.nlanes = max(self.nlanes, other.nlanes)
        self.tasks += other.tasks
        self.offloaded += other.offloaded
        self.makespan_s += other.makespan_s
        self.capacity_s += other.capacity_s
        for b in ("serialize", "queue_wait", "execute", "result", "merge",
                  "idle", "deserialize", "critical_path"):
            setattr(self, f"{b}_s",
                    getattr(self, f"{b}_s") + getattr(other, f"{b}_s"))
        self.pickle_bytes += other.pickle_bytes
        self.reconcile_errors += other.reconcile_errors
        for lane, s in other.lane_idle.items():
            self.lane_idle[lane] = self.lane_idle.get(lane, 0.0) + s
        for name, s in other.cp_tasks.items():
            self.cp_tasks[name] = self.cp_tasks.get(name, 0.0) + s
        for cls, cols in other.per_class.items():
            mine = self.per_class.setdefault(
                cls, {f: 0.0 for f in CLASS_FIELDS})
            for f, v in cols.items():
                mine[f] = mine.get(f, 0.0) + v
        for key, s in other.box_costs.items():
            self.box_costs[key] = self.box_costs.get(key, 0.0) + s
        return self

    @classmethod
    def from_traces(cls, traces: Sequence[StageTrace]) -> "StepPerf":
        step = cls()
        for trace in traces:
            step.merge(attribute_stage(trace))
        step.cp_tasks = critical_path_tasks(traces)
        return step

    # -- export ------------------------------------------------------------
    def as_gauges(self, top_cp: int = 8) -> Dict[str, float]:
        """Flat dict for the recorder's ``perf.*`` gauges."""
        out = {
            "lanes": float(self.nlanes),
            "stages": float(self.stages),
            "tasks": float(self.tasks),
            "offloaded": float(self.offloaded),
            "makespan_s": self.makespan_s,
            "capacity_s": self.capacity_s,
            "serialize_s": self.serialize_s,
            "queue_wait_s": self.queue_wait_s,
            "execute_s": self.execute_s,
            "result_s": self.result_s,
            "merge_s": self.merge_s,
            "idle_s": self.idle_s,
            "deserialize_s": self.deserialize_s,
            "pickle_bytes": float(self.pickle_bytes),
            "critical_path_s": self.critical_path_s,
            "realized_parallelism": self.realized_parallelism,
            "attributed_s": self.attributed_s,
            "coverage": self.coverage,
            "reconcile_errors": float(self.reconcile_errors),
            "overhead_s": self.overhead_s,
        }
        for lane, s in sorted(self.lane_idle.items()):
            out[f"lane.{lane}.idle_s"] = s
        for cls, cols in sorted(self.per_class.items()):
            for f, v in cols.items():
                out[f"class.{cls}.{f}"] = v
        ranked = sorted(self.cp_tasks.items(), key=lambda kv: -kv[1])
        for name, s in ranked[:top_cp]:
            out[f"cp.{name}"] = s
        for (lev, box), s in sorted(self.box_costs.items()):
            out[f"box_cost.L{lev}.b{box}"] = s
        return out


def attribute_stage(trace: StageTrace) -> StepPerf:
    """Tile one stage's capacity into the lifecycle buckets."""
    step = StepPerf()
    step.stages = 1
    step.nlanes = trace.nlanes
    step.tasks = len(trace.spans)
    step.makespan_s = trace.makespan_s
    step.capacity_s = trace.makespan_s * trace.nlanes
    step.reconcile_errors = trace.reconcile_errors
    step.critical_path_s, _ = critical_path(trace)

    lane_busy: Dict[int, List[Tuple[float, float]]] = {
        lane: [] for lane in range(trace.nlanes)}
    result_windows: List[Tuple[float, float]] = []

    for s in trace.spans:
        cols = step.per_class.setdefault(
            s.kclass, {f: 0.0 for f in CLASS_FIELDS})
        cols["count"] += 1
        cols["serialize_s"] += s.serialize_s
        cols["queue_wait_s"] += s.queue_wait_s
        cols["execute_s"] += s.execute_s
        cols["result_s"] += s.result_s
        cols["merge_s"] += s.merge_s
        step.serialize_s += s.serialize_s
        step.queue_wait_s += s.queue_wait_s
        step.execute_s += s.execute_s
        step.merge_s += s.merge_s
        step.deserialize_s += s.deserialize_s
        step.pickle_bytes += s.pickle_bytes
        if s.offloaded:
            step.offloaded += 1
        box = box_of(s.name)
        if box is not None and s.execute_s:
            step.box_costs[box] = step.box_costs.get(box, 0.0) + s.execute_s

        lane = s.lane if s.lane < trace.nlanes else trace.nlanes - 1
        busy = lane_busy.setdefault(lane, [])
        if s.t_started is not None and s.t_finished is not None:
            if s.offloaded and s.t_dispatched is not None:
                # queue wait + execute, contiguous on the worker lane
                busy.append((s.t_dispatched, s.t_finished))
            else:
                busy.append((s.t_started, s.t_finished))
        if s.offloaded:
            if s.t_dispatched is not None and s.serialize_s:
                lane_busy[0].append(
                    (s.t_dispatched - s.serialize_s, s.t_dispatched))
            if s.t_collected is not None and s.t_merged is not None:
                lane_busy[0].append((s.t_collected, s.t_merged))
            if s.t_finished is not None and s.t_collected is not None:
                result_windows.append((s.t_finished, s.t_collected))
        elif s.t_collected is not None and s.t_merged is not None:
            lane_busy[0].append((s.t_collected, s.t_merged))

    for lane in range(trace.nlanes):
        merged = _merge_intervals(lane_busy.get(lane, []))
        gaps = _gaps(merged, trace.makespan_s)
        idle = _length(gaps)
        if lane == 0 and result_windows:
            # driver gaps spent waiting on an in-flight result are the
            # "result" bucket; the remainder is true idle
            waiting = _overlap(gaps, result_windows)
            step.result_s += waiting
            idle -= waiting
        step.lane_idle[lane] = max(0.0, idle)
        step.idle_s += max(0.0, idle)
    return step
