"""Run report: summarize one recorded run's trace + metrics artifacts.

``python -m repro.report <run_dir>`` (or ``tools/trace_report.py``) reads
the Chrome trace JSON and metrics JSONL a recorded run produced and
prints:

- a hot-region table (calls, inclusive / exclusive seconds) computed from
  span nesting, the TinyProfiler view reconstructed from artifacts alone;
- the FillPatch split (FillBoundary vs ParallelCopy time, Fig. 7's axis);
- the runtime Overlap section (per-step posted vs finished comm time,
  measured comm/compute overlap, worker idle %, task counts by kind);
- a rank-to-rank communication matrix from the recorded ledger traffic;
- a device section (execution-backend launch accounting by kernel class,
  top kernels by modeled charged time) when the run used the device
  target;
- roofline points (arithmetic intensity per memory level, modeled
  achieved flops) from the per-kernel flop/byte counters (Fig. 4's axis);
- the per-timestep metrics trajectory (dt, active cells, ledger bytes).

Works identically on functional runs (wall time) and simulated-Summit
scaling exports (charged time) — the schema is shared.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import METRICS_NAME, TRACE_NAME
from repro.observability.tracer import load_chrome_trace


# -- span analysis ----------------------------------------------------------

class RegionSummary:
    """Aggregated statistics for one span name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.inclusive = 0.0  # seconds
        self.child = 0.0

    @property
    def exclusive(self) -> float:
        return self.inclusive - self.child


def summarize_spans(events: Sequence[dict]) -> Dict[str, RegionSummary]:
    """Per-name inclusive/exclusive seconds, from span containment.

    Events on each (pid, tid) track are sorted by start time (ties broken
    widest-first) and nested with an interval stack, so a span's direct
    parent accumulates its duration as child time — the same
    inclusive/exclusive decomposition TinyProfiler reports.
    """
    out: Dict[str, RegionSummary] = {}
    tracks: Dict[Tuple[int, int], List[dict]] = defaultdict(list)
    for ev in events:
        if ev.get("ph") == "X":
            tracks[(ev["pid"], ev["tid"])].append(ev)
    for evs in tracks.values():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[dict] = []  # open ancestors
        for ev in evs:
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - 1e-9:
                stack.pop()
            s = out.setdefault(ev["name"], RegionSummary(ev["name"]))
            s.calls += 1
            s.inclusive += ev["dur"] / 1e6
            if stack:
                parent = out.setdefault(
                    stack[-1]["name"], RegionSummary(stack[-1]["name"])
                )
                parent.child += ev["dur"] / 1e6
            stack.append(ev)
    return out


def split_of(events: Sequence[dict], parent: str) -> Dict[str, float]:
    """Seconds of each direct child name under every ``parent`` span."""
    out: Dict[str, float] = {}
    tracks: Dict[Tuple[int, int], List[dict]] = defaultdict(list)
    for ev in events:
        if ev.get("ph") == "X":
            tracks[(ev["pid"], ev["tid"])].append(ev)
    for evs in tracks.values():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[dict] = []
        for ev in evs:
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - 1e-9:
                stack.pop()
            if stack and stack[-1]["name"] == parent:
                out[ev["name"]] = out.get(ev["name"], 0.0) + ev["dur"] / 1e6
            stack.append(ev)
    return out


# -- metrics analysis -------------------------------------------------------

def overlap_rows(records: Sequence[dict]) -> List[dict]:
    """Per-step runtime scheduler statistics (the ``runtime.*`` gauges).

    One row per recorded step that carried runtime data: posted/finished
    comm seconds, compute seconds, measured overlap, worker idle
    fraction, and task counts by kind.
    """
    rows: List[dict] = []
    for rec in records:
        m = rec["metrics"]
        if "runtime.makespan_s" not in m:
            continue
        row = {"step": rec["step"],
               "posted": m.get("runtime.posted_comm_s", 0.0),
               "finish": m.get("runtime.finish_comm_s", 0.0),
               "compute": m.get("runtime.compute_s", 0.0),
               "overlap": m.get("runtime.overlap_s", 0.0),
               "overlap_frac": m.get("runtime.overlap_frac", 0.0),
               "idle_frac": m.get("runtime.idle_frac", 0.0),
               "workers": int(m.get("runtime.workers", 1)),
               "tasks": {k.split("runtime.tasks.", 1)[1]: int(v)
                         for k, v in m.items()
                         if k.startswith("runtime.tasks.")}}
        rows.append(row)
    return rows


def perf_totals(records: Sequence[dict]) -> Dict[str, float]:
    """Final cumulative ``perf.*`` lifecycle-attribution gauges
    (empty if the run had no perfscope)."""
    if not records:
        return {}
    final = records[-1]["metrics"]
    return {key.split("perf.", 1)[1]: value
            for key, value in final.items() if key.startswith("perf.")}


def resilience_totals(records: Sequence[dict]) -> Dict[str, float]:
    """Final cumulative ``resilience.*`` counters (empty if never sampled)."""
    if not records:
        return {}
    final = records[-1]["metrics"]
    return {key.split("resilience.", 1)[1]: value
            for key, value in final.items()
            if key.startswith("resilience.")}


def kernel_totals(records: Sequence[dict]) -> Dict[str, Dict[str, float]]:
    """Final cumulative per-kernel counters: {kernel: {field: value}}."""
    if not records:
        return {}
    final = records[-1]["metrics"]
    out: Dict[str, Dict[str, float]] = defaultdict(dict)
    for key, value in final.items():
        if key.startswith("kernel."):
            _, kernel, field = key.split(".", 2)
            out[kernel][field] = value
    return dict(out)


def device_class_totals(records: Sequence[dict]) -> Dict[str, Dict[str, float]]:
    """Final cumulative per-kernel-class launch counters
    (the ``device.class.*`` gauges): {class: {field: value}}."""
    if not records:
        return {}
    final = records[-1]["metrics"]
    out: Dict[str, Dict[str, float]] = defaultdict(dict)
    for key, value in final.items():
        if key.startswith("device.class."):
            _, _, cls, field = key.split(".", 3)
            out[cls][field] = value
    return dict(out)


def charged_kernel_times(kernels: Dict[str, Dict[str, float]]) -> List[tuple]:
    """(kernel, launches, points, charged seconds) by descending time.

    Charged time prices every launch with the V100 performance model and
    the kernel's cost budget — the simulated-Summit analogue of a
    per-kernel GPU time profile.
    """
    from repro.kernels.counts import budget_for_kernel
    from repro.machine.gpu import V100Model

    model = V100Model()
    rows = []
    for name, k in kernels.items():
        launches = int(k.get("launches", 0))
        points = k.get("points", 0.0)
        if not launches:
            continue
        seconds = launches * model.kernel_time(
            budget_for_kernel(name), int(points / launches))
        rows.append((name, launches, points, seconds))
    rows.sort(key=lambda r: -r[3])
    return rows


def ledger_totals(records: Sequence[dict]) -> Dict[str, Dict[str, float]]:
    """Final cumulative per-kind ledger counters."""
    if not records:
        return {}
    final = records[-1]["metrics"]
    out: Dict[str, Dict[str, float]] = defaultdict(dict)
    for key, value in final.items():
        if key.startswith("ledger."):
            _, kind, field = key.split(".", 2)
            out[kind][field] = value
    return dict(out)


def roofline_rows(kernels: Dict[str, Dict[str, float]]) -> List[tuple]:
    """(kernel, flops, AI@DRAM/L2/L1, modeled GF/s, %peak) per kernel."""
    from repro.kernels.counts import budget_for_kernel
    from repro.machine.gpu import V100Model

    model = V100Model()
    rows = []
    for name in sorted(kernels):
        k = kernels[name]
        flops = k.get("flops", 0.0)
        dram = k.get("dram_bytes", 0.0)
        if not flops or not dram:
            continue
        ai = {
            "DRAM": flops / dram,
            "L2": flops / k.get("l2_bytes", dram),
            "L1": flops / k.get("l1_bytes", dram),
        }
        budget = budget_for_kernel(name)
        achieved = model.achieved_flops(budget) if budget is not None else None
        frac = achieved / model.peak_dp_flops if achieved else None
        rows.append((name, flops, ai, achieved, frac))
    return rows


# -- rendering --------------------------------------------------------------

def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}TB"


def format_report(events: Sequence[dict], other: dict,
                  records: Sequence[dict], top: int = 12,
                  max_ranks: int = 8) -> str:
    lines: List[str] = []
    mode = other.get("mode", "wall")
    cfg = other.get("config", {})
    lines.append(f"== run report ({mode} time) ==")
    if cfg:
        lines.append("  " + "  ".join(f"{k}={v}" for k, v in cfg.items()))

    # hot regions
    regions = summarize_spans(
        [e for e in events if e.get("cat") in ("region", "charged")]
    )
    lines.append("")
    lines.append(f"-- hot regions (top {top}) --")
    lines.append(f"{'region':<26s} {'calls':>7s} {'incl[s]':>12s} {'excl[s]':>12s}")
    ordered = sorted(regions.values(), key=lambda s: -s.inclusive)
    for s in ordered[:top]:
        lines.append(f"{s.name:<26s} {s.calls:>7d} {s.inclusive:>12.6f} "
                     f"{max(0.0, s.exclusive):>12.6f}")

    # FillPatch split
    split = split_of(events, "FillPatch")
    if split:
        total = sum(split.values()) or 1.0
        lines.append("")
        lines.append("-- FillPatch split --")
        for name in sorted(split, key=lambda n: -split[n]):
            lines.append(f"{name:<26s} {split[name]:>12.6f}s "
                         f"{split[name] / total:>6.1%}")

    # runtime comm/compute overlap
    orows = overlap_rows(records)
    if orows:
        lines.append("")
        last = orows[-1]
        lines.append(f"-- overlap (task runtime, {last['workers']} worker(s)) --")
        lines.append(f"{'step':>6s} {'posted[s]':>10s} {'finish[s]':>10s} "
                     f"{'compute[s]':>11s} {'overlap[s]':>11s} {'ovl%':>6s} "
                     f"{'idle%':>6s}")
        for row in orows[-top:]:
            lines.append(
                f"{row['step']:>6d} {row['posted']:>10.6f} "
                f"{row['finish']:>10.6f} {row['compute']:>11.6f} "
                f"{row['overlap']:>11.6f} {row['overlap_frac']:>6.1%} "
                f"{row['idle_frac']:>6.1%}")
        totals = {k: sum(r[k] for r in orows)
                  for k in ("posted", "finish", "compute", "overlap")}
        lines.append(
            f"{'total':>6s} {totals['posted']:>10.6f} "
            f"{totals['finish']:>10.6f} {totals['compute']:>11.6f} "
            f"{totals['overlap']:>11.6f}")
        kinds = last["tasks"]
        if kinds:
            lines.append("  tasks/step: " + ", ".join(
                f"{k.replace('_', '-')}={kinds[k]}" for k in sorted(kinds)))

    # bottleneck: where the capacity of every lane actually went
    perf = perf_totals(records)
    if perf.get("capacity_s"):
        lanes = int(perf.get("lanes", 1))
        cap = perf["capacity_s"]
        lines.append("")
        lines.append(f"-- bottleneck (task lifecycle attribution, "
                     f"{lanes} lane(s)) --")
        lines.append(
            f"capacity {cap:.4f} worker-s over {int(perf.get('stages', 0))} "
            f"stage graphs (makespan {perf.get('makespan_s', 0.0):.4f}s, "
            f"coverage {perf.get('coverage', 0.0):.1%})")
        lines.append(f"{'bucket':<12s} {'seconds':>10s} {'%capacity':>10s}")
        for bucket in ("serialize", "queue_wait", "execute", "result",
                       "merge", "idle"):
            v = perf.get(f"{bucket}_s", 0.0)
            lines.append(f"{bucket.replace('_', '-'):<12s} {v:>10.4f} "
                         f"{v / cap:>10.1%}")
        lines.append(
            f"critical path {perf.get('critical_path_s', 0.0):.4f}s over "
            f"{int(perf.get('tasks', 0))} tasks "
            f"({int(perf.get('offloaded', 0))} offloaded); "
            f"realized parallelism "
            f"{perf.get('realized_parallelism', 0.0):.2f}x")
        lane_idle = sorted((int(k.split(".")[1]), v) for k, v in perf.items()
                           if k.startswith("lane.") and k.endswith(".idle_s"))
        if lane_idle:
            lines.append("lane idle: " + "  ".join(
                ("driver" if lane == 0 else f"w{lane}") + f"={v:.3f}s"
                for lane, v in lane_idle))
        classes = defaultdict(dict)
        for key, value in perf.items():
            if key.startswith("class."):
                _, cls, col = key.split(".", 2)
                classes[cls][col] = value
        if classes:
            lines.append("per-class lifecycle (seconds):")
            lines.append(f"  {'class':<16s} {'count':>6s} {'serial':>8s} "
                         f"{'wait':>8s} {'execute':>8s} {'result':>8s} "
                         f"{'merge':>8s}")
            ordered_cls = sorted(
                classes, key=lambda c: -classes[c].get("execute_s", 0.0))
            for cls in ordered_cls:
                c = classes[cls]
                lines.append(
                    f"  {cls:<16s} {int(c.get('count', 0)):>6d} "
                    f"{c.get('serialize_s', 0.0):>8.4f} "
                    f"{c.get('queue_wait_s', 0.0):>8.4f} "
                    f"{c.get('execute_s', 0.0):>8.4f} "
                    f"{c.get('result_s', 0.0):>8.4f} "
                    f"{c.get('merge_s', 0.0):>8.4f}")
        cp = sorted(((k.split("cp.", 1)[1], v) for k, v in perf.items()
                     if k.startswith("cp.")), key=lambda kv: -kv[1])
        if cp:
            lines.append("top critical-path tasks:")
            for name, v in cp:
                lines.append(f"  {name:<20s} {v:.4f}s")
        boxes = defaultdict(list)
        for key, value in perf.items():
            if key.startswith("box_cost."):
                _, lev, box = key.split(".", 2)
                boxes[lev].append((int(box[1:]), value))
        if boxes:
            lines.append("per-box execute cost (load-balance input):")
            for lev in sorted(boxes):
                row = " ".join(f"b{b}={v:.4f}s"
                               for b, v in sorted(boxes[lev]))
                lines.append(f"  {lev}: {row}")
        if perf.get("pickle_bytes"):
            lines.append(
                f"payload traffic: {_fmt_bytes(perf['pickle_bytes'])} "
                f"pickled (deserialize {perf.get('deserialize_s', 0.0):.4f}s "
                f"in workers)")
        lines.append(
            f"attribution overhead {perf.get('overhead_s', 0.0):.4f}s, "
            f"reconcile errors {int(perf.get('reconcile_errors', 0))}")

    # resilience: injected faults vs recovery actions, and solver health
    res = resilience_totals(records)
    if res:
        lines.append("")
        lines.append("-- resilience --")
        injected = {k.split("injected.", 1)[1]: int(v)
                    for k, v in res.items() if k.startswith("injected.")}
        if "faults_injected" in res:
            detail = (" (" + ", ".join(f"{k}={injected[k]}"
                                       for k in sorted(injected)) + ")"
                      if injected else "")
            lines.append(f"faults injected      {int(res['faults_injected'])}"
                         f"{detail}")
        for label, key in (
                ("step retries", "step_retries"),
                ("rollbacks", "rollbacks"),
                ("dt halvings", "dt_halvings"),
                ("recovered steps", "recovered_steps"),
                ("NaN detections", "nan_detections"),
                ("task retries", "task_retries"),
                ("task resubmits", "task_resubmits"),
                ("pool restarts", "pool_restarts"),
                ("degraded to serial", "degraded_to_serial"),
                ("autocheckpoints", "autocheckpoints"),
                ("checkpoint failures", "checkpoint_failures"),
                ("restores", "restores"),
        ):
            if key in res:
                lines.append(f"{label:<20s} {int(res[key])}")
        injected_n = int(res.get("faults_injected", 0))
        recovered = (int(res.get("recovered_steps", 0))
                     + int(res.get("task_retries", 0))
                     + int(res.get("task_resubmits", 0))
                     + int(res.get("checkpoint_failures", 0))
                     + int(res.get("restores", 0)))
        if injected_n:
            lines.append(
                f"outcome: {injected_n} fault(s) injected, "
                f"{recovered} recovery action(s) taken, run completed")

    # solver health: positivity-guard interventions
    if records:
        m_final = records[-1]["metrics"]
        if "safeguards.positivity_total" in m_final:
            total = int(m_final["safeguards.positivity_total"])
            worst = max(int(r["metrics"].get(
                "safeguards.positivity_cells", 0)) for r in records)
            lines.append("")
            lines.append("-- solver health --")
            lines.append(f"positivity clamps    {total} cell(s) total, "
                         f"worst step {worst}"
                         + ("  [healthy]" if total == 0 else ""))

    # comms matrix
    matrix = other.get("comms_matrix")
    if matrix:
        n = len(matrix)
        shown = min(n, max_ranks)
        lines.append("")
        lines.append(f"-- comms matrix (bytes, src rank -> dst rank"
                     + (f", first {shown} of {n} ranks" if shown < n else "")
                     + ") --")
        header = "src\\dst " + " ".join(f"{d:>10d}" for d in range(shown))
        lines.append(header)
        for s in range(shown):
            lines.append(f"{s:>7d} " + " ".join(
                f"{matrix[s][d]:>10d}" for d in range(shown)))
        total_bytes = sum(sum(row) for row in matrix)
        off_diag = sum(matrix[s][d] for s in range(n) for d in range(n) if s != d)
        lines.append(f"  total {_fmt_bytes(total_bytes)} "
                     f"({_fmt_bytes(off_diag)} between distinct ranks)")

    # execution-backend launch accounting (device target)
    kernels = kernel_totals(records)
    classes = device_class_totals(records)
    if classes:
        lines.append("")
        lines.append("-- device (execution-backend launch accounting) --")
        lines.append(f"{'class':<12s} {'launches':>9s} {'points':>12s} "
                     f"{'flops':>12s} {'DRAM bytes':>11s}")
        for cls in sorted(classes):
            c = classes[cls]
            lines.append(
                f"{cls:<12s} {int(c.get('launches', 0)):>9d} "
                f"{c.get('points', 0):>12.4g} {c.get('flops', 0):>12.4g} "
                f"{_fmt_bytes(c.get('dram_bytes', 0)):>11s}")
        total_launches = sum(int(c.get("launches", 0))
                             for c in classes.values())
        worker = 0
        if records:
            worker = int(records[-1]["metrics"].get(
                "device.worker_launches", 0))
        lines.append(f"  total launches = {total_launches}"
                     + (f" ({worker} from pool workers)" if worker else ""))
        charged = charged_kernel_times(kernels)
        if charged:
            lines.append("  top kernels by charged time (V100 model):")
            for name, launches, points, seconds in charged[:5]:
                lines.append(
                    f"    {name:<16s} {seconds * 1e3:>9.3f} ms  "
                    f"({launches} launches, {points:.4g} pts)")

    # roofline points
    rows = roofline_rows(kernels)
    if rows:
        lines.append("")
        lines.append("-- roofline points (per-kernel cumulative counts) --")
        lines.append(f"{'kernel':<12s} {'flops':>12s} {'AI@DRAM':>8s} "
                     f"{'AI@L2':>7s} {'AI@L1':>7s} {'GF/s(model)':>12s} {'%peak':>6s}")
        for name, flops, ai, achieved, frac in rows:
            perf = f"{achieved / 1e9:,.0f}" if achieved else "-"
            pk = f"{frac:.1%}" if frac else "-"
            lines.append(f"{name:<12s} {flops:>12.3g} {ai['DRAM']:>8.2f} "
                         f"{ai['L2']:>7.2f} {ai['L1']:>7.2f} {perf:>12s} {pk:>6s}")

    # ledger totals + metrics trajectory
    ledg = ledger_totals(records)
    if ledg:
        lines.append("")
        lines.append("-- ledger traffic by kind --")
        for kind in sorted(ledg):
            k = ledg[kind]
            lines.append(
                f"{kind:<14s} msgs={int(k.get('messages', 0)):>8d} "
                f"bytes={_fmt_bytes(k.get('bytes', 0)):>10s} "
                f"on-node={_fmt_bytes(k.get('on_node_bytes', 0)):>10s} "
                f"off-node={_fmt_bytes(k.get('off_node_bytes', 0)):>10s}"
            )
    if records:
        first, last = records[0], records[-1]
        m = last["metrics"]
        lines.append("")
        lines.append(f"-- metrics: {len(records)} timesteps, "
                     f"steps {first['step']}..{last['step']} --")
        if "dt" in m:
            lines.append(f"  final dt = {m['dt']:.4g}, t = {last['time']:.5g}")
        levels = sorted(k for k in m if k.startswith("active_cells.lev"))
        if levels:
            lines.append("  active cells: " + ", ".join(
                f"{k.split('.')[-1]}={int(m[k])}" for k in levels))
        if "tagged_cells" in m:
            lines.append(f"  tagged cells = {int(m['tagged_cells'])}, "
                         f"regrids = {int(m.get('regrids', 0))}")
        if "validation.l2_drift" in m:
            lines.append(f"  validation L2 drift = {m['validation.l2_drift']:.3e}")
    return "\n".join(lines)


# -- CLI --------------------------------------------------------------------

def load_service_record(run_dir: Optional[str]) -> Optional[dict]:
    """The serve layer's ``run.json`` for a service run directory, if any.

    Returns None for plain ``--record`` directories (no registry record)
    and for torn/unreadable records — the report then renders exactly as
    before the serving layer existed.
    """
    if run_dir is None:
        return None
    path = Path(run_dir) / "run.json"
    if not path.exists():
        return None
    import json

    try:
        rec = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return rec if isinstance(rec, dict) and "state" in rec else None


def service_header(rec: dict) -> str:
    """One context line for a service-submitted run."""
    parts = [f"service run {rec.get('id', '?')} [{rec.get('state', '?')}]"]
    if rec.get("label"):
        parts.append(f"label={rec['label']}")
    if rec.get("reason"):
        parts.append(f"reason={rec['reason']!r}")
    result = rec.get("result") or {}
    if result.get("case"):
        parts.append(f"case={result['case']}")
    if rec.get("latency_s") is not None:
        parts.append(f"latency={rec['latency_s']:.2f}s")
    return "  ".join(parts)


def service_recovery_section(rec: dict) -> Optional[str]:
    """Recovery accounting for a service run; None when uneventful.

    Rendered only when the run's lifecycle shows chaos survived —
    re-dispatches, requeues (drain/orphan reconciliation), a checkpoint
    resume, or evicted cache corruption — so fault-free runs keep their
    report unchanged.
    """
    result = rec.get("result") or {}
    attempts = int(rec.get("attempts", 0) or 0)
    requeues = int(rec.get("requeues", 0) or 0)
    resumed = bool(result.get("resumed"))
    evictions = int(result.get("cache_evictions", 0) or 0)
    if attempts <= 1 and not requeues and not resumed and not evictions:
        return None
    lines = ["-- service recovery --"]
    lines.append(f"  dispatch attempts = {attempts}, requeues = {requeues}")
    if resumed:
        lines.append(
            f"  resumed from checkpoint at step {result.get('resume_step')} "
            f"(replayed {int(result.get('replayed_steps', 0) or 0)} step(s))")
    if evictions:
        lines.append(f"  corrupt cache entries evicted = {evictions}")
    return "\n".join(lines)


def load_run(run_dir: Optional[str] = None, trace: Optional[str] = None,
             metrics: Optional[str] = None):
    """Resolve and load a run's artifacts; returns (events, other, records)."""
    if run_dir is not None:
        base = Path(run_dir)
        trace = trace or (str(base / TRACE_NAME)
                          if (base / TRACE_NAME).exists() else None)
        metrics = metrics or (str(base / METRICS_NAME)
                              if (base / METRICS_NAME).exists() else None)
    if trace is None and metrics is None:
        raise FileNotFoundError(
            f"no {TRACE_NAME} or {METRICS_NAME} found"
            + (f" under {run_dir}" if run_dir else "")
        )
    events: List[dict] = []
    other: dict = {}
    if trace is not None:
        events, other = load_chrome_trace(trace)
    # tolerant: a run that died mid-write leaves a truncated final line;
    # report everything that is intact instead of refusing to load
    records = (MetricsRegistry.read_jsonl(metrics, tolerant=True)
               if metrics else [])
    return events, other, records


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.report",
        description="Summarize one recorded run (trace.json + metrics.jsonl).",
    )
    parser.add_argument("run_dir", nargs="?", default=None,
                        help="directory holding trace.json / metrics.jsonl")
    parser.add_argument("--trace", default=None, help="explicit trace path")
    parser.add_argument("--metrics", default=None, help="explicit metrics path")
    parser.add_argument("--top", type=int, default=12,
                        help="hot-region rows to print")
    args = parser.parse_args(argv)
    if args.run_dir is None and args.trace is None and args.metrics is None:
        parser.error("give a run directory or --trace/--metrics paths")
    service = load_service_record(args.run_dir)
    try:
        events, other, records = load_run(args.run_dir, args.trace, args.metrics)
    except (FileNotFoundError, ValueError) as exc:
        if service is not None and service.get("state") in ("queued",
                                                            "running"):
            # a service run that hasn't produced artifacts yet is not an
            # error in the artifacts — say what's actually happening
            print(f"error: service run {service.get('id', '?')} is still "
                  f"{service['state']!r}; no metrics recorded yet — "
                  "retry once the run has progressed", file=sys.stderr)
            return 2
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # malformed trace JSON etc. — degrade cleanly
        print(f"error: could not load run artifacts: {exc}", file=sys.stderr)
        return 2
    if not events and not records:
        if service is not None and service.get("state") in ("queued",
                                                            "running"):
            print(f"error: service run {service.get('id', '?')} is still "
                  f"{service['state']!r}; its metrics stream holds no "
                  "complete record yet — retry once the run has "
                  "progressed", file=sys.stderr)
            return 2
        print("error: run artifacts held no usable events or metrics "
              "records (empty or fully truncated files?)", file=sys.stderr)
        return 2
    try:
        if service is not None:
            print(service_header(service))
            recovery = service_recovery_section(service)
            if recovery is not None:
                print(recovery)
        print(format_report(events, other, records, top=args.top))
    except BrokenPipeError:  # e.g. piped into head
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except Exception as exc:  # never traceback at the user: say what broke
        print(f"error: could not render report: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
