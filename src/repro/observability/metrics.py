"""MetricsRegistry: counters, gauges and histograms sampled per timestep.

The driver (or the simulated-Summit scaling exporter) updates instruments
as it runs and calls :meth:`MetricsRegistry.sample` once per timestep; the
accumulated records serialize to JSON Lines, one record per step::

    {"step": 3, "time": 0.0125, "metrics": {"dt": 4.1e-3, ...}}

Counters are monotonic (cumulative); gauges hold the last set value;
histograms flatten to ``name.count/.sum/.min/.max/.mean`` in each sample.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Union


class Counter:
    """A monotonically increasing cumulative count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary statistics of observed values."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def flatten(self) -> Dict[str, float]:
        return {
            f"{self.name}.count": float(self.count),
            f"{self.name}.sum": self.total,
            f"{self.name}.min": self.min if self.min is not None else 0.0,
            f"{self.name}.max": self.max if self.max is not None else 0.0,
            f"{self.name}.mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments plus the per-step sample log."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self.records: List[dict] = []
        self._stream = None
        self._stream_path: Optional[str] = None

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    # -- sampling ----------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Current value of every instrument, flattened to scalars."""
        out: Dict[str, float] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                out.update(inst.flatten())
            elif isinstance(inst, Gauge):
                if inst.value is not None:
                    out[name] = inst.value
            else:
                out[name] = inst.value
        return out

    def sample(self, step: int, time: float,
               extra: Optional[Dict[str, float]] = None) -> dict:
        """Record one per-timestep sample of every instrument."""
        metrics = self.snapshot()
        if extra:
            metrics.update({k: float(v) for k, v in extra.items()})
        rec = {"step": int(step), "time": float(time), "metrics": metrics}
        self.records.append(rec)
        if self._stream is not None:
            self._stream.write(json.dumps(rec) + "\n")
            self._stream.flush()
        return rec

    # -- serialization -----------------------------------------------------
    def stream_to(self, path) -> str:
        """Start appending each sample to ``path`` as it is taken.

        Streaming mode is what lets a live consumer (the serve layer's
        ``GET /runs/<id>/metrics``) watch a run's progress: every
        :meth:`sample` writes one complete line and flushes, so a reader
        sees at most one truncated record at the tail — which the
        tolerant reader skips.  :meth:`write_jsonl` on the same path then
        becomes a no-op close (the records are already on disk).
        """
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        self.close_stream()
        self._stream = p.open("w")
        self._stream_path = str(p)
        for rec in self.records:  # records sampled before streaming began
            self._stream.write(json.dumps(rec) + "\n")
        self._stream.flush()
        return str(p)

    def close_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def write_jsonl(self, path) -> str:
        p = Path(path)
        if self._stream is not None and str(p) == self._stream_path:
            # streamed all along: every record is already in the file
            self.close_stream()
            return str(p)
        p.parent.mkdir(parents=True, exist_ok=True)
        with p.open("w") as f:
            for rec in self.records:
                f.write(json.dumps(rec) + "\n")
        return str(p)

    @staticmethod
    def read_jsonl(path, tolerant: bool = False) -> List[dict]:
        """Load a metrics JSONL file; validates the record schema.

        With ``tolerant=True`` (used by the report CLI) malformed lines —
        typically a record truncated mid-write when a run died — and
        records missing required sections are skipped with a warning on
        stderr instead of aborting the whole load; every intact record
        still renders.
        """
        records: List[dict] = []
        for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                if tolerant:
                    print(f"warning: {path}:{lineno}: skipping malformed "
                          f"record ({exc})", file=sys.stderr)
                    continue
                raise ValueError(
                    f"{path}:{lineno}: malformed JSON record: {exc}"
                ) from exc
            missing = [f for f in ("step", "time", "metrics") if f not in rec]
            if missing:
                if tolerant:
                    print(f"warning: {path}:{lineno}: skipping record "
                          f"missing {missing[0]!r}", file=sys.stderr)
                    continue
                raise ValueError(
                    f"{path}:{lineno}: record missing {missing[0]!r}"
                )
            records.append(rec)
        return records
