"""Adapters: silo listeners that emit into the tracer / metrics registry.

Each adapter implements the listener callbacks of one existing accounting
silo (``TinyProfiler`` regions, ``CommLedger`` messages, ``GpuDevice``
launches) and forwards the events into the unified
:class:`~repro.observability.tracer.Tracer` and
:class:`~repro.observability.metrics.MetricsRegistry` — the silos' own
public APIs and accumulation behavior are untouched.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import DRIVER_STREAM, GPU_STREAM, Tracer


class ProfilerTraceAdapter:
    """TinyProfiler listener: regions become spans on a driver track.

    Wall regions (``region``) become measured wall spans; charges and
    charged regions (``charge`` / ``charged_region``) become charged spans
    laid out on the track's simulated clock — so the functional driver and
    the Summit performance model export the same span structure.
    """

    def __init__(self, tracer: Tracer, rank: int = 0,
                 stream: int = DRIVER_STREAM) -> None:
        self.tracer = tracer
        self.rank = rank
        self.stream = stream

    def on_enter(self, path: Tuple[str, ...]) -> None:
        self.tracer.begin(path[-1], self.rank, self.stream, cat="region",
                          args={"path": "/".join(path)})

    def on_exit(self, path: Tuple[str, ...], seconds: float) -> None:
        self.tracer.end(self.rank, self.stream)

    def on_charge(self, path: Tuple[str, ...], seconds: float,
                  calls: int) -> None:
        self.tracer.charge(path[-1], seconds, self.rank, self.stream,
                           args={"path": "/".join(path), "calls": calls})

    def on_enter_charged(self, path: Tuple[str, ...]) -> None:
        self.tracer.begin_charged(path[-1], self.rank, self.stream,
                                  args={"path": "/".join(path)})

    def on_exit_charged(self, path: Tuple[str, ...]) -> None:
        self.tracer.end_charged(self.rank, self.stream)


class LedgerMetricsAdapter:
    """CommLedger listener: per-kind traffic counters + a comms matrix.

    Maintains cumulative counters ``ledger.<kind>.bytes`` /
    ``ledger.<kind>.messages`` with on-node / off-node splits, and a
    rank-to-rank byte matrix for the run report.
    """

    def __init__(self, registry: MetricsRegistry,
                 ranks_per_node: int = 6) -> None:
        self.registry = registry
        self.ranks_per_node = ranks_per_node
        self._matrix: Dict[Tuple[int, int], int] = defaultdict(int)

    def on_message(self, msg) -> None:
        c = self.registry.counter
        c(f"ledger.{msg.kind}.bytes").inc(msg.nbytes)
        c(f"ledger.{msg.kind}.messages").inc()
        if not msg.local:
            same_node = (msg.src // self.ranks_per_node
                         == msg.dst // self.ranks_per_node)
            where = "on_node" if same_node else "off_node"
            c(f"ledger.{msg.kind}.{where}_bytes").inc(msg.nbytes)
        self._matrix[(msg.src, msg.dst)] += msg.nbytes

    def comms_matrix(self, nranks: Optional[int] = None) -> List[List[int]]:
        """Dense rank-to-rank byte matrix (row = src, column = dst)."""
        if nranks is None:
            nranks = 1 + max(
                (max(s, d) for (s, d) in self._matrix), default=0
            )
        out = [[0] * nranks for _ in range(nranks)]
        for (s, d), b in self._matrix.items():
            out[s][d] += b
        return out


class DeviceMetricsAdapter:
    """GpuDevice listener: per-kernel flop/byte counters + kernel spans.

    Launches update cumulative per-kernel counters (the roofline inputs)
    and the device-memory high-water gauge; when a tracer is supplied,
    each launch also becomes a wall span on the rank's GPU-stream track.
    """

    def __init__(self, registry: MetricsRegistry, rank: int = 0,
                 tracer: Optional[Tracer] = None,
                 stream: int = GPU_STREAM) -> None:
        self.registry = registry
        self.rank = rank
        self.tracer = tracer
        self.stream = stream

    def on_launch(self, device, rec, wall_seconds: float) -> None:
        c = self.registry.counter
        c(f"kernel.{rec.name}.launches").inc()
        c(f"kernel.{rec.name}.points").inc(rec.npoints)
        c(f"kernel.{rec.name}.flops").inc(rec.flops)
        c(f"kernel.{rec.name}.dram_bytes").inc(rec.dram_bytes)
        c(f"kernel.{rec.name}.l2_bytes").inc(rec.l2_bytes)
        c(f"kernel.{rec.name}.l1_bytes").inc(rec.l1_bytes)
        self.registry.gauge(
            f"device.rank{self.rank}.high_water_bytes").set(device.high_water)
        if self.tracer is not None:
            dur = wall_seconds * 1e6
            self.tracer.complete(rec.name, self.tracer.now_us() - dur, dur,
                                 self.rank, self.stream, cat="kernel",
                                 args={"points": rec.npoints,
                                       "class": rec.kernel_class})
