"""RunRecorder: wire a run to the tracer/registry and write the artifacts.

A recorder owns one :class:`Tracer` and one :class:`MetricsRegistry`,
attaches the silo adapters to a :class:`~repro.core.crocco.Crocco`
simulation, snapshots the per-timestep metrics the paper's evaluation
needs (dt, CFL, active cells per level, tagged cells, regrid count,
ledger traffic by kind with the on/off-node split, device memory
high-water, per-kernel flop/byte totals, L2 drift when a validation
reference is supplied), and finalizes two artifacts:

- ``trace_out`` — Chrome trace-event JSON (open in Perfetto), carrying the
  comms matrix and run configuration in ``otherData``;
- ``metrics_out`` — JSONL, one record per timestep.
"""

from __future__ import annotations

from typing import Optional

from repro.observability.adapters import (
    DeviceMetricsAdapter,
    LedgerMetricsAdapter,
    ProfilerTraceAdapter,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import GPU_STREAM, Tracer

#: conventional artifact names inside a run directory
TRACE_NAME = "trace.json"
METRICS_NAME = "metrics.jsonl"


class RunRecorder:
    """Tracer + registry + adapters for one recorded run."""

    def __init__(self, trace_out: Optional[str] = None,
                 metrics_out: Optional[str] = None,
                 stream_metrics: bool = False) -> None:
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.ledger_adapter: Optional[LedgerMetricsAdapter] = None
        self._sim = None
        self._finalized = False
        if stream_metrics and metrics_out:
            # live runs (the serve layer) append each sample as it is
            # taken so progress is observable before the run finishes
            self.metrics.stream_to(metrics_out)

    # -- wiring ------------------------------------------------------------
    def attach(self, sim) -> None:
        """Register adapters on a Crocco simulation's silos."""
        self._sim = sim
        sim.profiler.add_listener(ProfilerTraceAdapter(self.tracer, rank=0))
        self.tracer.set_thread_name(0, 0, "driver regions")
        self.ledger_adapter = LedgerMetricsAdapter(
            self.metrics, sim.comm.ranks_per_node
        )
        sim.comm.ledger.add_listener(self.ledger_adapter)
        # CPU versions forced onto the device backend target keep their
        # accounting devices in _backend_devices (sim.devices stays None)
        devices = sim.devices or getattr(sim, "_backend_devices", None)
        if devices is not None:
            for r, dev in enumerate(devices):
                dev.add_listener(
                    DeviceMetricsAdapter(self.metrics, rank=r,
                                         tracer=self.tracer)
                )
                self.tracer.set_process_name(r, f"rank {r} ({dev.name})")
                self.tracer.set_thread_name(r, GPU_STREAM, "gpu stream")

    # -- per-step sampling -------------------------------------------------
    def sample_step(self, sim) -> dict:
        """Snapshot the per-timestep metrics after one ``step()``."""
        g = self.metrics.gauge
        if sim.dt_history:
            g("dt").set(sim.dt_history[-1])
            self.metrics.histogram("dt_hist").observe(sim.dt_history[-1])
        cfl = sim.config.cfl if sim.config.cfl is not None else sim.case.cfl
        g("cfl").set(cfl)
        total_cells = 0
        for lev in range(sim.finest_level + 1):
            ba = sim.box_arrays[lev]
            n = ba.num_pts() if ba is not None else 0
            g(f"active_cells.lev{lev}").set(n)
            total_cells += n
        g("active_cells.total").set(total_cells)
        g("levels").set(sim.finest_level + 1)
        g("regrids").set(getattr(sim, "regrid_count", 0))
        tag_counts = getattr(sim, "last_tag_counts", {})
        g("tagged_cells").set(sum(tag_counts.values()))
        devices = sim.devices or getattr(sim, "_backend_devices", None)
        if devices is not None:
            g("device.high_water_bytes.max").set(
                max(d.high_water for d in devices)
            )
        # execution-backend accounting: cumulative per-kernel-class launch
        # counters (driver-recorded plus counters merged from pool workers)
        backend = getattr(getattr(sim, "kernels", None), "exec_backend", None)
        if backend is not None:
            totals = backend.class_totals()
            for cls, tot in totals.items():
                for field, value in tot.items():
                    g(f"device.class.{cls}.{field}").set(value)
            if totals:
                g("device.worker_launches").set(backend.worker_launches)
        # the fused target's scratch-cache counters (hit rate, resident
        # bytes, JIT state) — absent on host/device
        stats_fn = getattr(backend, "scratch_stats", None)
        if stats_fn is not None:
            for name, value in stats_fn().items():
                g(f"backend.scratch.{name}").set(float(value))
        engine = getattr(sim, "engine", None)
        if engine is not None and engine.last_step_report is not None:
            rep = engine.last_step_report
            for name, value in rep.as_dict().items():
                g(f"runtime.{name}").set(value)
        if engine is not None and engine.last_step_worker_counters:
            g("runtime.worker_launches").set(sum(
                int(d.get("launches", 0))
                for d in engine.last_step_worker_counters.values()))
        # lifecycle attribution: cumulative run totals (like device.class.*)
        # so the report only needs the final record
        scope = getattr(engine, "perfscope", None) if engine else None
        if scope is not None and scope.total is not None:
            for name, value in scope.total.as_gauges().items():
                g(f"perf.{name}").set(value)
        guard = getattr(sim, "guard", None)
        if guard is not None:
            # the guard indexes interventions by the step that produced
            # them; after step() the just-completed step is step_count-1
            g("safeguards.positivity_cells").set(
                guard.interventions.get(sim.step_count - 1, 0))
            g("safeguards.positivity_total").set(guard.total_interventions)
        resilience = getattr(sim, "resilience", None)
        faults = getattr(sim, "faults", None)
        if resilience is not None and (
                getattr(sim, "watchdog", None) is not None
                or faults is not None or resilience.counters):
            for name, value in resilience.as_dict().items():
                g(f"resilience.{name}").set(value)
        if faults is not None:
            g("resilience.faults_injected").set(len(faults.fired))
            for kind, n in faults.fired_by_kind().items():
                g(f"resilience.injected.{kind}").set(n)
        rec = self.metrics.sample(sim.step_count, sim.time)
        self.tracer.counter(
            "active_cells", {"cells": float(total_cells)}, rank=0
        )
        return rec

    def record_l2_drift(self, value: float) -> None:
        """Record a validation L2 drift (set by the validation harness)."""
        self.metrics.gauge("validation.l2_drift").set(value)

    # -- finalize ----------------------------------------------------------
    def _other_data(self, sim) -> dict:
        other = {"mode": "wall", "schema": "repro-trace-1"}
        if sim is not None:
            cfg = sim.config
            other["config"] = {
                "case": sim.case.name,
                "version": cfg.version,
                "nranks": sim.comm.nranks,
                "ranks_per_node": sim.comm.ranks_per_node,
                "max_level": cfg.max_level,
                "backend": sim.kernels.backend,
                "executor": getattr(sim, "engine", None).name
                if getattr(sim, "engine", None) is not None else "serial",
            }
            other["nranks"] = sim.comm.nranks
        if self.ledger_adapter is not None:
            nranks = sim.comm.nranks if sim is not None else None
            other["comms_matrix"] = self.ledger_adapter.comms_matrix(nranks)
        return other

    def finalize(self, sim=None) -> dict:
        """Write the configured artifacts; returns {kind: path}."""
        if self._finalized:
            return {}
        self._finalized = True
        sim = sim if sim is not None else self._sim
        written = {}
        if self.trace_out:
            written["trace"] = self.tracer.write(
                self.trace_out, other_data=self._other_data(sim)
            )
        if self.metrics_out:
            written["metrics"] = self.metrics.write_jsonl(self.metrics_out)
        return written
