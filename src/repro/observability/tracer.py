"""Tracer: nested spans on rank/stream tracks, Chrome trace-event export.

One :class:`Tracer` records both kinds of time this reproduction deals in:

- **wall** spans, measured with a monotonic clock while functional code
  runs (``span`` / ``begin`` / ``end``);
- **charged** spans, laid out on a per-track simulated clock so the Summit
  performance model can emit the *same* span structure with modeled
  seconds (``charge`` / ``begin_charged`` / ``end_charged``).

Every span is attributed to a ``rank`` (Chrome ``pid``) and ``stream``
(Chrome ``tid``), so per-rank GPU streams and the driver's region nest
render as separate tracks.  Export follows the Chrome trace-event JSON
object format — the file loads directly in Perfetto or chrome://tracing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: stream ids used by convention: 0 = the driver's region nest,
#: 1 = the rank's (simulated) GPU stream
DRIVER_STREAM = 0
GPU_STREAM = 1

_Track = Tuple[int, int]  # (rank/pid, stream/tid)


class Tracer:
    """Collects trace events; wall and charged clocks per track."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self._events: List[dict] = []
        # open wall spans per track: (name, start_us, cat, args)
        self._open: Dict[_Track, List[tuple]] = {}
        # simulated clock cursor per track, microseconds
        self._cursor: Dict[_Track, float] = {}
        # open charged spans per track: (name, start_us, cat, args)
        self._open_charged: Dict[_Track, List[tuple]] = {}
        self._process_names: Dict[int, str] = {}
        self._thread_names: Dict[_Track, str] = {}

    # -- clocks ------------------------------------------------------------
    def now_us(self) -> float:
        """Wall microseconds since the tracer was created."""
        return (self._clock() - self._t0) * 1e6

    def cursor_us(self, rank: int = 0, stream: int = DRIVER_STREAM) -> float:
        """Simulated-clock position of one track, microseconds."""
        return self._cursor.get((rank, stream), 0.0)

    # -- wall spans --------------------------------------------------------
    @contextmanager
    def span(self, name: str, rank: int = 0, stream: int = DRIVER_STREAM,
             cat: str = "region", args: Optional[dict] = None) -> Iterator[None]:
        """Wall-clock span context manager."""
        self.begin(name, rank, stream, cat, args)
        try:
            yield
        finally:
            self.end(rank, stream)

    def begin(self, name: str, rank: int = 0, stream: int = DRIVER_STREAM,
              cat: str = "region", args: Optional[dict] = None) -> None:
        """Open a wall span (callback-style, for adapter hooks)."""
        self._open.setdefault((rank, stream), []).append(
            (name, self.now_us(), cat, args)
        )

    def end(self, rank: int = 0, stream: int = DRIVER_STREAM) -> None:
        """Close the innermost open wall span on this track."""
        stack = self._open.get((rank, stream))
        if not stack:
            raise RuntimeError(f"no open span on track ({rank}, {stream})")
        name, t0, cat, args = stack.pop()
        self.complete(name, t0, self.now_us() - t0, rank, stream, cat, args)

    def complete(self, name: str, ts_us: float, dur_us: float,
                 rank: int = 0, stream: int = DRIVER_STREAM,
                 cat: str = "region", args: Optional[dict] = None) -> None:
        """Emit one complete ("X") event with explicit timestamps."""
        ev = {"name": name, "ph": "X", "ts": ts_us, "dur": max(0.0, dur_us),
              "pid": rank, "tid": stream, "cat": cat}
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    # -- charged (simulated) spans ----------------------------------------
    def charge(self, name: str, seconds: float, rank: int = 0,
               stream: int = DRIVER_STREAM, cat: str = "charged",
               args: Optional[dict] = None) -> None:
        """Emit a leaf span of ``seconds`` at the track's simulated cursor."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        key = (rank, stream)
        t0 = self._cursor.get(key, 0.0)
        dur = seconds * 1e6
        self.complete(name, t0, dur, rank, stream, cat, args)
        self._cursor[key] = t0 + dur

    @contextmanager
    def charged_span(self, name: str, rank: int = 0,
                     stream: int = DRIVER_STREAM, cat: str = "charged",
                     args: Optional[dict] = None) -> Iterator[None]:
        """A charged parent span covering the charges made inside it."""
        self.begin_charged(name, rank, stream, cat, args)
        try:
            yield
        finally:
            self.end_charged(rank, stream)

    def begin_charged(self, name: str, rank: int = 0,
                      stream: int = DRIVER_STREAM, cat: str = "charged",
                      args: Optional[dict] = None) -> None:
        key = (rank, stream)
        self._open_charged.setdefault(key, []).append(
            (name, self._cursor.get(key, 0.0), cat, args)
        )

    def end_charged(self, rank: int = 0, stream: int = DRIVER_STREAM) -> None:
        key = (rank, stream)
        stack = self._open_charged.get(key)
        if not stack:
            raise RuntimeError(f"no open charged span on track {key}")
        name, t0, cat, args = stack.pop()
        self.complete(name, t0, self._cursor.get(key, 0.0) - t0,
                      rank, stream, cat, args)

    # -- point events ------------------------------------------------------
    def instant(self, name: str, rank: int = 0, stream: int = DRIVER_STREAM,
                cat: str = "mark", args: Optional[dict] = None,
                ts_us: Optional[float] = None) -> None:
        ev = {"name": name, "ph": "i", "s": "t",
              "ts": self.now_us() if ts_us is None else ts_us,
              "pid": rank, "tid": stream, "cat": cat}
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    def counter(self, name: str, values: Dict[str, float], rank: int = 0,
                ts_us: Optional[float] = None) -> None:
        """Emit a Chrome counter ("C") sample."""
        self._events.append({
            "name": name, "ph": "C",
            "ts": self.now_us() if ts_us is None else ts_us,
            "pid": rank, "tid": 0, "cat": "metric",
            "args": {k: float(v) for k, v in values.items()},
        })

    # -- track naming ------------------------------------------------------
    def set_process_name(self, rank: int, name: str) -> None:
        self._process_names[rank] = name

    def set_thread_name(self, rank: int, stream: int, name: str) -> None:
        self._thread_names[(rank, stream)] = name

    # -- export ------------------------------------------------------------
    def events(self) -> List[dict]:
        return list(self._events)

    def _metadata_events(self) -> List[dict]:
        out = []
        ranks = {ev["pid"] for ev in self._events}
        for r in sorted(ranks | set(self._process_names)):
            out.append({"name": "process_name", "ph": "M", "ts": 0.0,
                        "pid": r, "tid": 0,
                        "args": {"name": self._process_names.get(r, f"rank {r}")}})
        tracks = {(ev["pid"], ev["tid"]) for ev in self._events}
        for (r, s) in sorted(tracks | set(self._thread_names)):
            default = "driver" if s == DRIVER_STREAM else f"stream {s}"
            out.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                        "pid": r, "tid": s,
                        "args": {"name": self._thread_names.get((r, s), default)}})
        return out

    def to_chrome(self, other_data: Optional[dict] = None) -> dict:
        """The Chrome trace-event JSON object (metadata + events)."""
        doc = {
            "traceEvents": self._metadata_events() + self._events,
            "displayTimeUnit": "ms",
        }
        if other_data:
            doc["otherData"] = other_data
        return doc

    def write(self, path, other_data: Optional[dict] = None) -> str:
        """Serialize the trace to ``path``; returns the path written."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_chrome(other_data)))
        return str(p)


# -- schema helpers ---------------------------------------------------------

#: fields every trace event must carry (Chrome trace-event format)
REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(doc: dict) -> List[str]:
    """Validate a trace document; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not an array"]
    for i, ev in enumerate(events):
        for f in REQUIRED_EVENT_FIELDS:
            if f not in ev:
                problems.append(f"event {i}: missing field {f!r}")
        ph = ev.get("ph")
        if ph == "X":
            if "dur" not in ev:
                problems.append(f"event {i}: 'X' event without 'dur'")
            elif ev["dur"] < 0:
                problems.append(f"event {i}: negative duration")
        if "ts" in ev and ev["ts"] < 0:
            problems.append(f"event {i}: negative timestamp")
    return problems


def load_chrome_trace(path) -> Tuple[List[dict], dict]:
    """Read a trace file back; returns (events, otherData)."""
    doc = json.loads(Path(path).read_text())
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(f"{path}: invalid Chrome trace: {problems[:3]}")
    return doc["traceEvents"], doc.get("otherData", {})
