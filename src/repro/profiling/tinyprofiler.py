"""TinyProfiler: hierarchical region timers.

Mirrors AMReX's TinyProfiler, which the paper uses to collect the region
decompositions of Figs. 6 and 7: nested named regions accumulate call
counts and (wall or externally supplied) time, and a report lists
inclusive/exclusive totals.

Besides wall-clock timing, regions accept *charged* time so the Summit
performance model can attribute simulated seconds to the same region
names (FillPatch, Advance, Regrid, ComputeDt, AverageDown, and the
FillPatch internals ParallelCopy/FillBoundary).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass
class RegionStats:
    """Accumulated statistics for one region (identified by its path)."""

    name: str
    calls: int = 0
    inclusive: float = 0.0
    child_time: float = 0.0

    @property
    def exclusive(self) -> float:
        return self.inclusive - self.child_time


class TinyProfiler:
    """Nested region timer with charge (simulated-time) support.

    Listeners (see :mod:`repro.observability.adapters`) receive every
    region enter/exit and charge as it happens, so traces can be exported
    without changing how regions are declared.
    """

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, ...], RegionStats] = {}
        self._stack: List[Tuple[str, ...]] = []
        self._wall_open: set = set()  # paths currently timed by region()
        self._listeners: List[object] = []

    # -- listeners ---------------------------------------------------------
    def add_listener(self, listener: object) -> None:
        """Attach an observer with on_enter/on_exit/on_charge/
        on_enter_charged/on_exit_charged callbacks (all optional)."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, event: str, *args) -> None:
        for listener in self._listeners:
            cb = getattr(listener, event, None)
            if cb is not None:
                cb(*args)

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Time a region with the wall clock (nests under the current region)."""
        path = tuple(self._stack[-1] if self._stack else ()) + (name,)
        self._stack.append(path)
        self._wall_open.add(path)
        self._notify("on_enter", path)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._stack.pop()
            self._wall_open.discard(path)
            self._accumulate(path, dt)
            self._notify("on_exit", path, dt)

    def charge(self, name: str, seconds: float, calls: int = 1) -> None:
        """Attribute simulated time to a region under the current nesting."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        path = tuple(self._stack[-1] if self._stack else ()) + (name,)
        self._accumulate(path, seconds, calls)
        self._notify("on_charge", path, seconds, calls)

    @contextmanager
    def charged_region(self, name: str) -> Iterator[None]:
        """A zero-wall-time nesting context for structuring charges."""
        path = tuple(self._stack[-1] if self._stack else ()) + (name,)
        self._stack.append(path)
        self._notify("on_enter_charged", path)
        try:
            yield
        finally:
            self._stack.pop()
            if path not in self._stats:
                self._stats[path] = RegionStats(name=name)
            self._notify("on_exit_charged", path)

    def _accumulate(self, path: Tuple[str, ...], dt: float, calls: int = 1) -> None:
        stats = self._stats.setdefault(path, RegionStats(name=path[-1]))
        stats.calls += calls
        stats.inclusive += dt
        while len(path) > 1:
            parent = self._stats.setdefault(path[:-1], RegionStats(name=path[-2]))
            parent.child_time += dt
            # a parent timed by region() captures this time with its own
            # clock (open now, or in a previous pass); a never-entered
            # parent — a charged_region nest — absorbs it as inclusive,
            # and the roll-up continues to *its* parent in turn
            if parent.calls > 0 or path[:-1] in self._wall_open:
                break
            parent.inclusive += dt
            path = path[:-1]

    # -- queries -----------------------------------------------------------
    def total(self, name: str) -> float:
        """Summed inclusive time over every region with this name."""
        return sum(s.inclusive for p, s in self._stats.items() if p[-1] == name)

    def calls(self, name: str) -> int:
        return sum(s.calls for p, s in self._stats.items() if p[-1] == name)

    def top_level(self) -> Dict[str, float]:
        """{name: inclusive time} for depth-1 regions."""
        return {
            p[0]: s.inclusive for p, s in self._stats.items() if len(p) == 1
        }

    def breakdown(self, parent: str) -> Dict[str, float]:
        """{child name: inclusive} summed over every occurrence of ``parent``."""
        out: Dict[str, float] = {}
        for p, s in self._stats.items():
            if len(p) >= 2 and p[-2] == parent:
                out[p[-1]] = out.get(p[-1], 0.0) + s.inclusive
        return out

    def reset(self) -> None:
        self._stats.clear()
        self._stack.clear()
        self._wall_open.clear()

    def report(self) -> str:
        """An indented text report (TinyProfiler style): children grouped
        under their parents, siblings ordered by inclusive time."""
        lines = ["TinyProfiler report", "-" * 60]

        def children_of(parent: Tuple[str, ...]):
            kids = [p for p in self._stats
                    if len(p) == len(parent) + 1 and p[:len(parent)] == parent]
            return sorted(kids, key=lambda p: -self._stats[p].inclusive)

        def walk(path: Tuple[str, ...]) -> None:
            s = self._stats[path]
            indent = "  " * (len(path) - 1)
            lines.append(
                f"{indent}{s.name:<30s} calls={s.calls:<8d} "
                f"incl={s.inclusive:.6f}s excl={s.exclusive:.6f}s"
            )
            for kid in children_of(path):
                walk(kid)

        for top in children_of(()):
            walk(top)
        return "\n".join(lines)
