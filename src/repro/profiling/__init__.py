"""Profiling utilities: TinyProfiler-style region timers."""

from repro.profiling.tinyprofiler import TinyProfiler

__all__ = ["TinyProfiler"]
